"""Static model-graph verifier for the deployable BNN grammar.

Symbolically walks a :class:`~repro.nn.sequential.Sequential` — shape
inference via the container's static hooks, a value-*domain* lattice
(``pixel8`` → ``real`` → ``binary``) instead of executing forward — and
checks every structural invariant the paper states and the hardware
compiler enforces:

* batch-norm must immediately precede sign so thresholds fold (§III-A);
* max-pool must consume binary maps so hardware pools with OR (§III-B);
* conv/dense blocks must match the threshold-foldable grammar;
* PE must divide each MVTU's rows and SIMD its fan-in (FINN folding,
  Table I) — shared with :func:`repro.hw.compiler.folding_violations`,
  not reimplemented;
* dead layers (identity on the inferred domain) and silent dtype
  narrowing are reported as warnings, as is a weight footprint
  exceeding every catalog device's BRAM envelope.

A model that passes :func:`verify_model` without errors cannot fail
structurally in :func:`repro.hw.compiler.compile_model`.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.diagnostics import DiagnosticReport
from repro.hw.compiler import (
    FoldingConfig,
    folding_violations,
    mvtu_geometry,
)
from repro.hw.devices import DEVICES
from repro.nn.layers import (
    BatchNorm,
    BinaryDense,
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    SignActivation,
)
from repro.nn.layers.xnor import XnorDense
from repro.nn.sequential import Sequential

__all__ = ["verify_model"]

#: Bits per 36Kb BRAM block (the unit hw/devices.py budgets in).
_BRAM36_BITS = 36 * 1024

#: Value domains of the activation stream, in narrowing order.
_PIXEL8, _REAL, _BINARY = "pixel8", "real", "binary"

_VIOLATION_RULE = {"arity": "MG009", "pe": "MG007", "simd": "MG008"}


def _layer_list(model: Sequential):
    return [(name, model[name]) for name in model.layer_names]


def verify_model(
    model: Sequential,
    folding: Optional[FoldingConfig] = None,
    name: str = "model",
) -> DiagnosticReport:
    """Verify ``model`` (and optionally a folding) without executing it.

    Returns a :class:`~repro.analysis.diagnostics.DiagnosticReport`;
    an error-free report guarantees :func:`compile_model` accepts the
    model structurally.
    """
    report = DiagnosticReport(target=name)
    layers = _layer_list(model)
    if not layers:
        report.emit("MG001", "model has no layers", path=name)
        return report
    if model.input_shape is None:
        report.emit(
            "MG001",
            "model was built without input_shape; static shape inference "
            "is impossible and compile_model would reject it",
            path=name,
            fix_hint="construct Sequential(..., input_shape=(H, W, C))",
        )

    shapes = {
        lname: (in_shape, out_shape, error)
        for lname, _, in_shape, out_shape, error in model.iter_shape_inference()
    }
    _check_structure(report, name, layers, shapes)
    if folding is not None:
        _check_folding(report, name, model, folding)
    return report


# -- structural walk ----------------------------------------------------------
def _check_structure(report, model_name, layers, shapes) -> None:
    domain = _PIXEL8
    n = len(layers)
    for i, (lname, layer) in enumerate(layers):
        prev = layers[i - 1][1] if i > 0 else None
        nxt = layers[i + 1][1] if i + 1 < n else None
        in_shape, out_shape, error = shapes.get(lname, (None, None, None))
        is_last = i == n - 1

        if isinstance(layer, Conv2D):
            _check_conv(report, model_name, lname, layer, layers, i, domain)
            domain = _REAL
        elif isinstance(layer, Dense):
            _check_dense(
                report, model_name, lname, layer, nxt, layers, i,
                in_shape, domain,
            )
            domain = _REAL
        elif isinstance(layer, BatchNorm):
            if isinstance(prev, BatchNorm):
                report.emit(
                    "MG010",
                    f"{lname}: BatchNorm directly follows BatchNorm "
                    f"{layers[i - 1][0]!r}; the pair folds into one affine",
                    path=model_name, symbol=lname,
                    fix_hint="remove one of the two batch-norm layers",
                )
            domain = _REAL
        elif isinstance(layer, SignActivation):
            if not isinstance(prev, BatchNorm):
                report.emit(
                    "MG002",
                    f"{lname}: sign binarisation is preceded by "
                    f"{type(prev).__name__ if prev is not None else 'nothing'}"
                    f", not BatchNorm — thresholds cannot fold (§III-A)",
                    path=model_name, symbol=lname,
                    fix_hint="order each block Conv/Dense -> BatchNorm -> "
                             "SignActivation",
                )
            if domain == _BINARY:
                report.emit(
                    "MG010",
                    f"{lname}: sign of an already-binary stream is the "
                    f"identity (dead layer)",
                    path=model_name, symbol=lname,
                    fix_hint="delete the redundant SignActivation",
                )
            domain = _BINARY
        elif isinstance(layer, MaxPool2D):
            if domain != _BINARY:
                report.emit(
                    "MG003",
                    f"{lname}: max-pool consumes a {domain} stream; the "
                    f"hardware OR-pool needs sign to run first (§III-B)",
                    path=model_name, symbol=lname,
                    fix_hint="move MaxPool2D after the block's "
                             "SignActivation",
                )
        elif isinstance(layer, Flatten):
            if isinstance(prev, Flatten):
                report.emit(
                    "MG010",
                    f"{lname}: consecutive Flatten layers; the second is "
                    f"the identity",
                    path=model_name, symbol=lname,
                    fix_hint="delete the redundant Flatten",
                )
        else:
            report.emit(
                "MG014",
                f"{lname}: {type(layer).__name__} is not part of the "
                f"deployable grammar",
                path=model_name, symbol=lname,
                fix_hint="deployable layers: (Binary)Conv2D, BatchNorm, "
                         "SignActivation, MaxPool2D, Flatten, BinaryDense",
            )

        if error is not None and not (
            isinstance(layer, Dense) and in_shape is not None
            and len(in_shape) != 1
        ):
            # Dense-on-non-flat input is reported as MG006 (below);
            # everything else is a plain shape-contract failure.
            report.emit(
                "MG001",
                f"{lname}: static shape inference failed on input "
                f"{in_shape}: {error}",
                path=model_name, symbol=lname,
            )

        if is_last and not isinstance(layer, Dense):
            report.emit(
                "MG005",
                f"model ends with {lname} ({type(layer).__name__}); the "
                f"final layer must be a bare BinaryDense logits layer",
                path=model_name, symbol=lname,
                fix_hint="finish with BinaryDense(..., num_classes) and no "
                         "trailing BatchNorm/SignActivation",
            )


def _check_conv(report, model_name, lname, layer, layers, i, domain) -> None:
    n = len(layers)
    nxt = layers[i + 1][1] if i + 1 < n else None
    nxt2 = layers[i + 2][1] if i + 2 < n else None
    if not (isinstance(nxt, BatchNorm) and isinstance(nxt2, SignActivation)):
        report.emit(
            "MG004",
            f"{lname}: conv must be followed by BatchNorm -> "
            f"SignActivation to be threshold-foldable, found "
            f"{type(nxt).__name__ if nxt is not None else 'nothing'} -> "
            f"{type(nxt2).__name__ if nxt2 is not None else 'nothing'}",
            path=model_name, symbol=lname,
            fix_hint="order each conv block Conv -> BatchNorm -> "
                     "SignActivation [-> MaxPool2D]",
        )
    if layer.stride != (1, 1) or layer.padding != (0, 0):
        report.emit(
            "MG013",
            f"{lname}: stride={layer.stride}, padding={layer.padding}; "
            f"the hardware SWU supports stride 1 and no padding only",
            path=model_name, symbol=lname,
            fix_hint="use kernel 3x3, stride 1, valid padding (the FINN "
                     "CNV geometry)",
        )
    if domain == _REAL:
        report.emit(
            "MG011",
            f"{lname}: conv consumes a non-binarised (real) stream; the "
            f"binary datapath would silently narrow it to 1 bit",
            path=model_name, symbol=lname,
            fix_hint="binarise with BatchNorm -> SignActivation before "
                     "this layer",
        )


def _check_dense(
    report, model_name, lname, layer, nxt, layers, i, in_shape, domain
) -> None:
    n = len(layers)
    is_last = i == n - 1
    if in_shape is not None and len(in_shape) != 1:
        report.emit(
            "MG006",
            f"{lname}: dense layer reached with non-flat shape {in_shape}",
            path=model_name, symbol=lname,
            fix_hint="insert a Flatten layer between the conv stack and "
                     "the first dense layer",
        )
    if isinstance(nxt, BatchNorm):
        nxt2 = layers[i + 2][1] if i + 2 < n else None
        if not isinstance(nxt2, SignActivation):
            report.emit(
                "MG005",
                f"{lname}: dense layer with BatchNorm must be followed by "
                f"SignActivation, found "
                f"{type(nxt2).__name__ if nxt2 is not None else 'nothing'}",
                path=model_name, symbol=lname,
                fix_hint="order each FC block Dense -> BatchNorm -> "
                         "SignActivation",
            )
        if not isinstance(layer, BinaryDense):
            report.emit(
                "MG005",
                f"{lname}: hardware FC layers must be BinaryDense, got "
                f"{type(layer).__name__}",
                path=model_name, symbol=lname,
                fix_hint="replace with BinaryDense (same dims)",
            )
    elif is_last:
        if not isinstance(layer, BinaryDense):
            report.emit(
                "MG005",
                f"{lname}: the logits layer must be BinaryDense, got "
                f"{type(layer).__name__}",
                path=model_name, symbol=lname,
                fix_hint="replace with BinaryDense (same dims)",
            )
        elif isinstance(layer, XnorDense):
            report.emit(
                "MG005",
                f"{lname}: XNOR-Net scales on the logits layer would need "
                f"real multipliers in hardware",
                path=model_name, symbol=lname,
                fix_hint="use plain BinaryDense for the final layer",
            )
    else:
        report.emit(
            "MG005",
            f"{lname}: dense layer is neither thresholded (BatchNorm -> "
            f"sign) nor the final logits layer",
            path=model_name, symbol=lname,
            fix_hint="add BatchNorm -> SignActivation after it, or make "
                     "it the last layer",
        )
    if domain not in (_BINARY, _PIXEL8):
        report.emit(
            "MG011",
            f"{lname}: dense layer consumes a non-binarised ({domain}) "
            f"stream; the binary datapath would silently narrow it",
            path=model_name, symbol=lname,
            fix_hint="binarise with BatchNorm -> SignActivation before "
                     "this layer",
        )


# -- folding + resource envelope ----------------------------------------------
def _check_folding(report, model_name, model, folding) -> None:
    geometry = mvtu_geometry(model)
    for mvtu_name, check, message in folding_violations(
        folding.pe, folding.simd, geometry
    ):
        hint = ""
        if check == "pe":
            geom = next(g for g in geometry if g.name == mvtu_name)
            hint = f"valid PE values divide {geom.rows}"
        elif check == "simd":
            geom = next(g for g in geometry if g.name == mvtu_name)
            hint = f"valid SIMD values divide {geom.cols}"
        else:
            hint = (
                f"supply one (PE, SIMD) pair per MVTU: "
                f"{[g.name for g in geometry]}"
            )
        report.emit(
            _VIOLATION_RULE[check], message,
            path=model_name, symbol=mvtu_name or "folding", fix_hint=hint,
        )

    weight_bits = sum(g.rows * g.cols for g in geometry)
    envelopes = {
        dev.name: int(dev.bram36 * _BRAM36_BITS) for dev in DEVICES.values()
    }
    if envelopes and weight_bits > max(envelopes.values()):
        biggest = max(envelopes, key=envelopes.get)
        report.emit(
            "MG012",
            f"{weight_bits:,} weight bits exceed every catalog device's "
            f"BRAM envelope (largest: {biggest} at "
            f"{max(envelopes.values()):,} bits)",
            path=model_name, symbol="resources",
            fix_hint="shrink channel widths (n-CNV/µ-CNV-style) or extend "
                     "hw/devices.py with a larger part",
        )
