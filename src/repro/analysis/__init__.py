"""Static analysis for the BinaryCoP codebase (``repro lint`` /
``repro verify-model``).

Two engines over one structured-diagnostic core
(:mod:`~repro.analysis.diagnostics`):

* the **model-graph verifier** (:func:`verify_model`) — symbolic
  shape/dtype inference over a :class:`~repro.nn.Sequential` plus the
  BNN/FINN structural rules (BN-before-sign, sign-before-pool,
  threshold-fold legality, PE/SIMD folding divisibility, dead-layer and
  dtype-narrowing detection). A model that verifies error-free cannot
  fail structurally in :func:`repro.hw.compiler.compile_model`;
* the **AST lint pass** (:func:`lint_paths`) — stdlib-``ast`` rules for
  lock discipline, global numpy RNG use, in-place ops on views, bare
  excepts and mutable defaults, with a justified suppression baseline
  (:class:`Baseline`, ``.repro-lint-baseline``).
"""

from repro.analysis.baseline import (
    BASELINE_FILENAME,
    Baseline,
    BaselineEntry,
    find_baseline,
)
from repro.analysis.diagnostics import (
    RULES,
    Diagnostic,
    DiagnosticReport,
    Rule,
    Severity,
    rules_table,
)
from repro.analysis.graph import verify_model
from repro.analysis.lint import collect_sources, lint_file, lint_paths

__all__ = [
    "BASELINE_FILENAME",
    "Baseline",
    "BaselineEntry",
    "Diagnostic",
    "DiagnosticReport",
    "RULES",
    "Rule",
    "Severity",
    "collect_sources",
    "find_baseline",
    "lint_file",
    "lint_paths",
    "rules_table",
    "verify_model",
]
