"""Static analysis for the BinaryCoP codebase (``repro lint`` /
``repro verify-model`` / ``repro lockgraph``).

Four engines over one structured-diagnostic core
(:mod:`~repro.analysis.diagnostics`):

* the **model-graph verifier** (:func:`verify_model`) — symbolic
  shape/dtype inference over a :class:`~repro.nn.Sequential` plus the
  BNN/FINN structural rules (BN-before-sign, sign-before-pool,
  threshold-fold legality, PE/SIMD folding divisibility, dead-layer and
  dtype-narrowing detection). A model that verifies error-free cannot
  fail structurally in :func:`repro.hw.compiler.compile_model`;
* the **AST lint pass** — per-file stdlib-``ast`` rules for lock
  discipline, global numpy RNG use, in-place ops on views, bare excepts
  and mutable defaults;
* the **concurrency pass** (:func:`analyze_concurrency`, CC001–CC005) —
  whole-program lock resolution + call graph: lock-order cycles,
  blocking under a mutex, unguarded shared-state writes;
* the **aliasing pass** (:func:`analyze_aliasing`, AL001–AL003) —
  arena-view taint through the allocation-free fast path: overlapping
  ``out=``, escaping views, use-after-reset.

:func:`lint_paths` drives the last three (selectable via ``passes=``)
with a justified suppression baseline (:class:`Baseline`,
``.repro-lint-baseline``).
"""

from repro.analysis.aliasing import analyze_aliasing
from repro.analysis.baseline import (
    BASELINE_FILENAME,
    Baseline,
    BaselineEntry,
    find_baseline,
)
from repro.analysis.callgraph import ProjectIndex
from repro.analysis.concurrency import (
    LockOrderGraph,
    analyze_concurrency,
    build_lock_graph,
)
from repro.analysis.diagnostics import (
    RULES,
    Diagnostic,
    DiagnosticReport,
    Rule,
    Severity,
    rules_table,
)
from repro.analysis.graph import verify_model
from repro.analysis.lint import (
    PASSES,
    collect_sources,
    lint_file,
    lint_paths,
    prune_baseline,
)

__all__ = [
    "BASELINE_FILENAME",
    "Baseline",
    "BaselineEntry",
    "Diagnostic",
    "DiagnosticReport",
    "LockOrderGraph",
    "PASSES",
    "ProjectIndex",
    "RULES",
    "Rule",
    "Severity",
    "analyze_aliasing",
    "analyze_concurrency",
    "build_lock_graph",
    "collect_sources",
    "find_baseline",
    "lint_file",
    "lint_paths",
    "prune_baseline",
    "rules_table",
    "verify_model",
]
