"""Whole-program lock-order and shared-state analysis (CC001–CC005).

Pipeline: :class:`~repro.analysis.callgraph.ProjectIndex` resolves
classes and calls, :func:`~repro.analysis.locks.resolve_locks` finds
every lock, :func:`~repro.analysis.locks.extract_events` summarises each
function, then a fixed-point pass propagates *transitively acquired
locks* and *may-block* through resolved calls. From those summaries:

- **CC001** — the global lock-acquisition-order graph (edge ``A -> B``
  when ``B`` is taken while ``A`` is held, directly or through a
  resolved call) contains a cycle: two threads interleaving those paths
  can deadlock. The message carries both acquisition sites.
- **CC002** — a ``Lock``/``RLock``/``Condition`` is held around a call
  that blocks indefinitely (``Event.wait``, ``queue.get``, a callee
  that may block). ``Condition.wait`` on the *held* condition is exempt:
  waiting releases that lock by design.
- **CC003** — an attribute of a lock-owning class is written without
  any lock from code reachable from a thread entry point, while other
  accesses of the same attribute are lock-guarded.
- **CC004** — the same attribute is guarded by two *different* locks in
  different places, so neither guards anything.
- **CC005** — a lock created as a function local: it is born unshared,
  so it cannot exclude anybody.

Everything unresolved is opaque: an unknown callee contributes no
edges and no blocking. The analysis under-approximates (misses) rather
than over-approximates (false alarms).
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.callgraph import FunctionInfo, ProjectIndex
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.locks import (
    FunctionEvents,
    LockRegistry,
    extract_events,
    resolve_locks,
)

__all__ = [
    "LockOrderGraph",
    "ConcurrencyAnalysis",
    "build_analysis",
    "build_lock_graph",
    "analyze_concurrency",
]

#: lock kinds whose holders must not block (semaphores are designed to
#: be held across long-running work, so they are exempt from CC002).
_MUTEX_KINDS = {"Lock", "RLock", "Condition"}


@dataclass(frozen=True)
class EdgeSite:
    """One witness that ``src`` was held while ``dst`` was acquired."""

    src_path: str
    src_line: int
    dst_path: str
    dst_line: int
    via: str  # "" for a direct nested acquisition, else "call to X"


class LockOrderGraph:
    """Directed graph over lock identities (alias roots)."""

    def __init__(self) -> None:
        self.registry = LockRegistry()
        self.edges: Dict[Tuple[str, str], List[EdgeSite]] = {}

    # -- construction --------------------------------------------------------
    def add_edge(self, src: str, dst: str, site: EdgeSite) -> None:
        if src == dst:
            return  # re-acquisition is not an ordering fact
        self.edges.setdefault((src, dst), []).append(site)

    # -- queries -------------------------------------------------------------
    @property
    def nodes(self) -> List[str]:
        roots = {
            self.registry.root(ident)
            for ident, info in self.registry.locks.items()
        }
        for src, dst in self.edges:
            roots.add(src)
            roots.add(dst)
        return sorted(roots)

    def display(self, ident: str) -> str:
        info = self.registry.locks.get(ident)
        return info.display if info else ident.split("::", 1)[-1]

    def cycles(self) -> List[List[str]]:
        """Elementary cycles, one representative per strongly-connected
        component (enough for reporting: any SCC edge set deadlocks)."""
        adj: Dict[str, List[str]] = {}
        for src, dst in self.edges:
            adj.setdefault(src, []).append(dst)
        sccs = _tarjan(adj)
        out = []
        for scc in sccs:
            if len(scc) < 2:
                continue
            cycle = _walk_cycle(adj, set(scc))
            if cycle:
                out.append(cycle)
        return out

    # -- output --------------------------------------------------------------
    def to_dot(self) -> str:
        lines = [
            "digraph lock_order {",
            '  rankdir=LR;',
            '  node [shape=box, fontname="monospace"];',
        ]
        for ident in self.nodes:
            info = self.registry.locks.get(ident)
            kind = f"\\n({info.kind})" if info else ""
            lines.append(
                f'  "{ident}" [label="{self.display(ident)}{kind}"];'
            )
        for (src, dst), sites in sorted(self.edges.items()):
            first = sites[0]
            label = f"{Path(first.dst_path).name}:{first.dst_line}"
            lines.append(f'  "{src}" -> "{dst}" [label="{label}"];')
        lines.append("}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "nodes": [
                {
                    "id": ident,
                    "display": self.display(ident),
                    "kind": (
                        self.registry.locks[ident].kind
                        if ident in self.registry.locks
                        else "unknown"
                    ),
                    "path": (
                        self.registry.locks[ident].path
                        if ident in self.registry.locks
                        else ""
                    ),
                    "line": (
                        self.registry.locks[ident].line
                        if ident in self.registry.locks
                        else 0
                    ),
                }
                for ident in self.nodes
            ],
            "edges": [
                {
                    "from": src,
                    "to": dst,
                    "sites": [
                        {
                            "held_at": f"{s.src_path}:{s.src_line}",
                            "acquired_at": f"{s.dst_path}:{s.dst_line}",
                            "via": s.via,
                        }
                        for s in sites
                    ],
                }
                for (src, dst), sites in sorted(self.edges.items())
            ],
            "cycles": self.cycles(),
        }

    def render_json(self) -> str:
        return json.dumps(self.to_json(), indent=2)


def _tarjan(adj: Dict[str, List[str]]) -> List[List[str]]:
    """Iterative Tarjan SCC (small graphs, but no recursion limits)."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    sccs: List[List[str]] = []
    nodes = set(adj)
    for targets in adj.values():
        nodes.update(targets)

    for start in sorted(nodes):
        if start in index:
            continue
        work = [(start, iter(adj.get(start, ())))]
        index[start] = low[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(adj.get(nxt, ()))))
                    advanced = True
                    break
                elif nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
    return sccs


def _walk_cycle(
    adj: Dict[str, List[str]], scc: Set[str]
) -> Optional[List[str]]:
    """A concrete cycle through ``scc`` starting at its smallest node."""
    start = min(scc)
    path = [start]
    seen = {start}
    node = start
    while True:
        nxts = [n for n in adj.get(node, ()) if n in scc]
        if not nxts:
            return None
        nxt = min(nxts)
        if nxt == start:
            return path
        if nxt in seen:
            # fall into the loop; trim the tail before the repeat
            i = path.index(nxt)
            return path[i:]
        seen.add(nxt)
        path.append(nxt)
        node = nxt


@dataclass
class ConcurrencyAnalysis:
    """Shared intermediate state: index, locks, per-function summaries."""

    index: ProjectIndex
    registry: LockRegistry
    events: Dict[str, FunctionEvents]
    #: ref -> lock roots the function may acquire (incl. via calls),
    #: with one representative acquisition site per root.
    acquires: Dict[str, Dict[str, Tuple[str, int]]] = field(default_factory=dict)
    #: ref -> (label, path, line) when the function may block.
    blocks: Dict[str, Optional[Tuple[str, str, int]]] = field(default_factory=dict)
    #: refs of thread entry points and everything reachable from them.
    thread_reachable: Set[str] = field(default_factory=set)


def build_analysis(
    sources: Iterable[Tuple[Path, ast.Module]]
) -> ConcurrencyAnalysis:
    index = ProjectIndex.build(sources)
    registry = resolve_locks(index)
    events: Dict[str, FunctionEvents] = {}
    for fn in index.all_functions():
        events[fn.ref] = extract_events(fn, index, registry)
    analysis = ConcurrencyAnalysis(index=index, registry=registry, events=events)
    _fixed_point(analysis)
    _thread_reachability(analysis)
    return analysis


def _fixed_point(analysis: ConcurrencyAnalysis) -> None:
    """Propagate acquired-lock sets and may-block through resolved calls."""
    registry = analysis.registry
    acquires: Dict[str, Dict[str, Tuple[str, int]]] = {}
    blocks: Dict[str, Optional[Tuple[str, str, int]]] = {}
    for ref, ev in analysis.events.items():
        direct: Dict[str, Tuple[str, int]] = {}
        for acq in ev.acquisitions:
            root = registry.root(acq.ident)
            direct.setdefault(root, (acq.path, acq.line))
        acquires[ref] = direct
        blocks[ref] = (
            (ev.blocking[0].what, ev.blocking[0].path, ev.blocking[0].line)
            if ev.blocking
            else None
        )

    changed = True
    while changed:
        changed = False
        for ref, ev in analysis.events.items():
            mine = acquires[ref]
            for call in ev.calls:
                if call.callee is None:
                    continue
                callee_ref = call.callee.ref
                for root, site in acquires.get(callee_ref, {}).items():
                    if root not in mine:
                        mine[root] = site
                        changed = True
                if blocks[ref] is None and blocks.get(callee_ref) is not None:
                    what, _, _ = blocks[callee_ref]
                    blocks[ref] = (
                        f"{call.callee.display} ({what})",
                        ev.fn.path,
                        call.line,
                    )
                    changed = True
    analysis.acquires = acquires
    analysis.blocks = blocks


def _thread_entry_refs(analysis: ConcurrencyAnalysis) -> Set[str]:
    """Functions handed to ``threading.Thread(target=...)`` or
    ``executor.submit(fn, ...)`` anywhere in the project."""
    entries: Set[str] = set()
    for ref, ev in analysis.events.items():
        local_types = analysis.index.local_types(ev.fn)
        for call in ev.calls:
            func = call.node.func
            name = (
                func.attr if isinstance(func, ast.Attribute)
                else getattr(func, "id", "")
            )
            candidates: List[ast.AST] = []
            if name == "Thread":
                candidates += [
                    kw.value for kw in call.node.keywords if kw.arg == "target"
                ]
            elif name in ("submit", "map") and isinstance(func, ast.Attribute):
                if call.node.args:
                    candidates.append(call.node.args[0])
            for cand in candidates:
                target = analysis.index.resolve_callable(
                    cand, ev.fn, local_types
                )
                if target is not None:
                    entries.add(target.ref)
    return entries


def _thread_reachability(analysis: ConcurrencyAnalysis) -> None:
    frontier = list(_thread_entry_refs(analysis))
    reachable = set(frontier)
    while frontier:
        ref = frontier.pop()
        ev = analysis.events.get(ref)
        if ev is None:
            continue
        for call in ev.calls:
            if call.callee is not None and call.callee.ref not in reachable:
                reachable.add(call.callee.ref)
                frontier.append(call.callee.ref)
    analysis.thread_reachable = reachable


def build_lock_graph(
    sources: Iterable[Tuple[Path, ast.Module]],
    analysis: Optional[ConcurrencyAnalysis] = None,
) -> LockOrderGraph:
    if analysis is None:
        analysis = build_analysis(sources)
    graph = LockOrderGraph()
    graph.registry = analysis.registry
    registry = analysis.registry
    for ref, ev in analysis.events.items():
        for acq in ev.acquisitions:
            dst = registry.root(acq.ident)
            for held_ident, held_path, held_line in acq.held:
                graph.add_edge(
                    registry.root(held_ident),
                    dst,
                    EdgeSite(held_path, held_line, acq.path, acq.line, ""),
                )
        for call in ev.calls:
            if call.callee is None or not call.held:
                continue
            for root, (site_path, site_line) in analysis.acquires.get(
                call.callee.ref, {}
            ).items():
                for held_ident, held_path, held_line in call.held:
                    graph.add_edge(
                        registry.root(held_ident),
                        root,
                        EdgeSite(
                            held_path,
                            held_line,
                            site_path,
                            site_line,
                            f"call to {call.callee.display} at "
                            f"{Path(ev.fn.path).name}:{call.line}",
                        ),
                    )
    return graph


# -- rules ---------------------------------------------------------------------


def analyze_concurrency(
    sources: Iterable[Tuple[Path, ast.Module]],
    analysis: Optional[ConcurrencyAnalysis] = None,
) -> List[Diagnostic]:
    if analysis is None:
        analysis = build_analysis(sources)
    graph = build_lock_graph((), analysis)
    diags: List[Diagnostic] = []
    diags += _cc001_cycles(graph)
    diags += _cc002_blocking(analysis)
    diags += _cc003_004_shared_state(analysis)
    diags += _cc005_local_locks(analysis)
    return diags


def _cc001_cycles(graph: LockOrderGraph) -> List[Diagnostic]:
    diags = []
    for cycle in graph.cycles():
        hops = []
        first_site: Optional[EdgeSite] = None
        for i, src in enumerate(cycle):
            dst = cycle[(i + 1) % len(cycle)]
            sites = graph.edges.get((src, dst), [])
            site = sites[0] if sites else None
            if site is not None and first_site is None:
                first_site = site
            where = (
                f" [{Path(site.dst_path).name}:{site.dst_line}"
                + (f" {site.via}" if site.via else "")
                + "]"
                if site
                else ""
            )
            hops.append(f"{graph.display(src)} -> {graph.display(dst)}{where}")
        diags.append(
            Diagnostic(
                "CC001",
                "lock-order cycle (potential deadlock): "
                + "; ".join(hops),
                path=first_site.dst_path if first_site else "",
                line=first_site.dst_line if first_site else None,
                symbol=" -> ".join(graph.display(n) for n in cycle),
                fix_hint=(
                    "impose a global acquisition order (always take "
                    f"{graph.display(min(cycle))} first) or merge the locks"
                ),
            )
        )
    return diags


def _cc002_blocking(analysis: ConcurrencyAnalysis) -> List[Diagnostic]:
    registry = analysis.registry
    diags = []

    def mutex_held(held) -> List[str]:
        roots = []
        for ident, _, _ in held:
            root = registry.root(ident)
            info = registry.locks.get(root)
            if info is not None and info.kind in _MUTEX_KINDS:
                roots.append(root)
        return roots

    for ref, ev in analysis.events.items():
        for site in ev.blocking:
            roots = mutex_held(site.held)
            if not roots:
                continue
            if site.receiver_root is not None and site.receiver_root in roots:
                # Condition.wait releases the condition's own lock; only
                # *other* held locks are a problem.
                roots = [r for r in roots if r != site.receiver_root]
                if not roots:
                    continue
            held_names = ", ".join(
                sorted(analysis.registry.locks[r].display for r in roots
                       if r in analysis.registry.locks)
            ) or "a lock"
            diags.append(
                Diagnostic(
                    "CC002",
                    f"{site.what} called while holding {held_names}; every "
                    f"other thread needing that lock stalls for the full wait",
                    path=site.path,
                    line=site.line,
                    symbol=ev.fn.display,
                    fix_hint="release the lock before blocking, or use a "
                    "Condition tied to that lock",
                )
            )
        for call in ev.calls:
            if call.callee is None or not call.held:
                continue
            roots = mutex_held(call.held)
            if not roots:
                continue
            blocked = analysis.blocks.get(call.callee.ref)
            if blocked is None:
                continue
            # calling into a function that waits on a condition aliased
            # to a held lock is the AdmissionQueue.pop pattern — exempt
            # when every held mutex is that condition's root.
            callee_ev = analysis.events.get(call.callee.ref)
            if callee_ev is not None:
                cond_roots = {
                    b.receiver_root
                    for b in callee_ev.blocking
                    if b.receiver_root is not None
                }
                if cond_roots and all(r in cond_roots for r in roots):
                    continue
            held_names = ", ".join(
                sorted(analysis.registry.locks[r].display for r in roots
                       if r in analysis.registry.locks)
            ) or "a lock"
            diags.append(
                Diagnostic(
                    "CC002",
                    f"call to {call.callee.display} (may block: {blocked[0]}) "
                    f"while holding {held_names}",
                    path=ev.fn.path,
                    line=call.line,
                    symbol=ev.fn.display,
                    fix_hint="move the blocking call outside the lock",
                )
            )
    return diags


def _cc003_004_shared_state(analysis: ConcurrencyAnalysis) -> List[Diagnostic]:
    registry = analysis.registry
    diags = []
    for mod in analysis.index.modules.values():
        for cls in mod.classes.values():
            lock_attrs = registry.class_lock_attrs(cls)
            if not lock_attrs:
                continue
            # attr -> list of (method, access, class-lock roots held)
            profile: Dict[str, List[Tuple[FunctionInfo, object, Set[str]]]] = {}
            for method in cls.methods.values():
                ev = analysis.events.get(method.ref)
                if ev is None:
                    continue
                for acc in ev.attr_accesses:
                    if acc.attr in lock_attrs or acc.attr.startswith("__"):
                        continue
                    roots = {
                        registry.root(ident) for ident, _, _ in acc.held
                    }
                    profile.setdefault(acc.attr, []).append(
                        (method, acc, roots)
                    )
            for attr, accesses in profile.items():
                guarded = [entry for entry in accesses if entry[2]]
                if not guarded:
                    continue  # never guarded anywhere: not a lock-discipline attr
                # the guard is consistent iff one lock is held at *every*
                # guarded access (extra locks on top are fine)
                common = set.intersection(*(roots for _, _, roots in guarded))
                guard_roots = set()
                for _, _, roots in guarded:
                    guard_roots |= roots
                if not common:
                    methods = sorted(
                        {m.display for m, _, roots in accesses if roots}
                    )
                    first = min(
                        (m for m, a, roots in accesses if roots),
                        key=lambda m: m.node.lineno,
                    )
                    diags.append(
                        Diagnostic(
                            "CC004",
                            f"attribute '{attr}' is guarded by "
                            f"{len(guard_roots)} different locks ("
                            + ", ".join(
                                sorted(
                                    registry.locks[r].display
                                    for r in guard_roots
                                    if r in registry.locks
                                )
                            )
                            + f") across {', '.join(methods)}; no single lock "
                            f"protects it",
                            path=cls.path,
                            line=first.node.lineno,
                            symbol=f"{cls.name}.{attr}",
                            fix_hint="pick one lock for the attribute and use "
                            "it everywhere",
                        )
                    )
                    continue
                for method, acc, roots in accesses:
                    if roots or not acc.is_write:
                        continue
                    if method.name == "__init__":
                        continue  # construction happens-before publication
                    if method.ref not in analysis.thread_reachable:
                        continue
                    diags.append(
                        Diagnostic(
                            "CC003",
                            f"attribute '{attr}' written without a lock in "
                            f"{method.display} (reachable from a thread entry "
                            f"point) but guarded by "
                            + next(
                                (registry.locks[r].display
                                 for r in sorted(common)
                                 if r in registry.locks),
                                "a lock",
                            )
                            + " elsewhere",
                            path=method.path,
                            line=acc.line,
                            symbol=f"{cls.name}.{attr}",
                            fix_hint="take the guarding lock around the write",
                        )
                    )
    return diags


def _cc005_local_locks(analysis: ConcurrencyAnalysis) -> List[Diagnostic]:
    diags = []
    for ref, ev in analysis.events.items():
        if ev.fn.name == "__init__":
            continue  # locks born in __init__ are stored on self by the
            # assignment resolver; plain locals there are still suspect,
            # but the resolver already claimed self-attr bindings.
        for name, line in ev.local_locks:
            diags.append(
                Diagnostic(
                    "CC005",
                    f"lock '{name}' is a function local: each call creates a "
                    f"fresh lock, so it excludes nothing",
                    path=ev.fn.path,
                    line=line,
                    symbol=ev.fn.display,
                    fix_hint="hoist the lock to the instance or module scope",
                )
            )
    return diags
