"""Reusable buffer arena: allocation-free steady-state training.

The training loop's big allocations recur with identical shapes every
step — im2col column tensors, GEMM outputs, gradient scratch — because
mini-batches share a shape. Yet each ``forward``/``backward`` used to
allocate them fresh, so a 300-epoch run (the paper's budget) spends a
measurable slice of wall time in the allocator and the page-faulting
that follows.

:class:`BufferArena` fixes that with the obvious trick: a dictionary of
buffers keyed by ``(owner, role, shape, dtype)``. A layer asks for "my
``cols`` buffer of this shape" each step and gets the *same* ndarray
back, already warm in the page tables. Keys include the owning layer's
identity, so two conv layers never alias, and include the exact shape,
so a trailing odd-sized batch simply gets (and thereafter reuses) its
own buffer instead of corrupting the common one.

Safety model — why reuse cannot change numerics:

* A buffer is reused only across *steps*, never within one: each
  ``(owner, role)`` pair is written once per forward (or backward) and
  fully overwritten before the next read. Backward consumes the buffers
  its own forward produced, before the next forward touches them.
* The arena is installed only for training (:class:`~repro.nn.trainer.
  Trainer` attaches it via ``Module.set_arena``); evaluation and serving
  paths never see it, so concurrent inference (``repro.serving``) keeps
  its thread safety.
* Buffers are plain C-contiguous ndarrays; layers fill them with
  ``out=``-style kernels (``np.matmul(..., out=)``, ``np.copyto``) that
  are bit-identical to their allocating forms.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

__all__ = ["BufferArena"]


class BufferArena:
    """Shape-keyed pool of reusable scratch ndarrays.

    The arena carries an :attr:`epoch` counter that increments on every
    :meth:`clear`. Long-lived holders of arena views (the inference
    execution plans in :mod:`repro.hw.plan` bind views at compile time)
    record the epoch they bound against and refuse to run if the arena
    was cleared underneath them — the programmatic form of the AL003
    use-after-reset rule the static analyzer enforces syntactically.
    """

    def __init__(self) -> None:
        self._buffers: Dict[Tuple, np.ndarray] = {}
        self._epoch = 0

    def get(self, owner: object, role: str, shape, dtype=np.float32) -> np.ndarray:
        """The persistent buffer for ``(owner, role, shape, dtype)``.

        Contents are unspecified on return — callers must fully overwrite
        the buffer before reading it.
        """
        key = (id(owner), role, tuple(int(s) for s in shape), np.dtype(dtype))
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.empty(key[2], dtype=key[3])
            self._buffers[key] = buf
        return buf

    def __len__(self) -> int:
        return len(self._buffers)

    @property
    def nbytes(self) -> int:
        """Total bytes currently pooled."""
        return sum(b.nbytes for b in self._buffers.values())

    @property
    def epoch(self) -> int:
        """Monotonic reset counter; bumps on every :meth:`clear`."""
        return self._epoch

    def clear(self) -> None:
        """Drop every pooled buffer (e.g. between differently-shaped runs).

        Invalidates all outstanding views: the epoch bump lets holders
        (e.g. a compiled :class:`repro.hw.plan.ExecutionPlan`) detect
        staleness instead of silently writing into orphaned storage.
        """
        self._buffers.clear()
        self._epoch += 1
