"""Module and Parameter abstractions for the numpy neural-network substrate.

The framework is a classic define-by-layer design: every :class:`Module`
implements an explicit ``forward`` and ``backward``. There is no taped
autograd — the models in this paper are strictly sequential, and explicit
backward passes keep the arithmetic transparent (important here, because
the hardware compiler must reason about the exact forward semantics).

Data layout is **NHWC** throughout: activations are
``(batch, height, width, channels)``, matching the paper's
:math:`A^{l-1} \\in \\mathbb{R}^{X_i \\times Y_i \\times C_i}` notation.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["Parameter", "Module"]


class Parameter:
    """A trainable tensor with its gradient accumulator.

    Attributes
    ----------
    data:
        The parameter value. For binary layers this is the *latent*
        full-precision tensor; binarisation happens in the layer forward.
    grad:
        Accumulated gradient, same shape as ``data`` (``None`` until the
        first backward pass).
    name:
        Dotted path assigned when the parameter is registered.
    latent_binary:
        True for latent weights of binary layers; optimizers clip these to
        ``[-1, 1]`` after each step (BinaryConnect-style) so the latent
        magnitude cannot drift beyond the STE's pass-through window.
    weight_decay:
        Whether weight decay applies (disabled for batch-norm and biases).
    """

    def __init__(
        self,
        data: np.ndarray,
        name: str = "param",
        latent_binary: bool = False,
        weight_decay: bool = True,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: Optional[np.ndarray] = None
        self.name = name
        self.latent_binary = bool(latent_binary)
        self.weight_decay = bool(weight_decay)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    def zero_grad(self) -> None:
        """Reset the gradient accumulator."""
        self.grad = None

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into the accumulator (allocating on first use)."""
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match parameter "
                f"{self.name} shape {self.data.shape}"
            )
        if self.grad is None:
            self.grad = grad.astype(np.float32, copy=True)
        else:
            self.grad += grad

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "latent-binary " if self.latent_binary else ""
        return f"Parameter({self.name}, {kind}shape={self.data.shape})"


class Module:
    """Base class for layers and containers.

    Subclasses implement :meth:`forward` and :meth:`backward`; ``backward``
    receives the gradient of the loss w.r.t. the module output and must
    return the gradient w.r.t. the module input, accumulating parameter
    gradients along the way. Forward caches whatever backward needs on
    ``self`` (cleared by :meth:`clear_cache`).
    """

    def __init__(self) -> None:
        self.training = True
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self._arena = None  # BufferArena installed by the trainer (or None)

    # -- registration -----------------------------------------------------
    def register_parameter(self, name: str, param: Parameter) -> Parameter:
        """Attach a parameter under ``name`` (also sets it as an attribute)."""
        if name in self._parameters:
            raise ValueError(f"parameter {name!r} already registered")
        param.name = f"{type(self).__name__}.{name}"
        self._parameters[name] = param
        setattr(self, name, param)
        return param

    def register_module(self, name: str, module: "Module") -> "Module":
        """Attach a child module under ``name``."""
        if name in self._modules:
            raise ValueError(f"module {name!r} already registered")
        self._modules[name] = module
        setattr(self, name, module)
        return module

    # -- traversal ---------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """All parameters of this module and its children, depth-first."""
        out = list(self._parameters.values())
        for child in self._modules.values():
            out.extend(child.parameters())
        return out

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for mod_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{mod_name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants, depth-first."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    # -- mode --------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects batch-norm statistics)."""
        self.training = bool(mode)
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        """Set inference mode recursively."""
        return self.train(False)

    def set_arena(self, arena) -> "Module":
        """Install (or remove, with ``None``) a scratch-buffer arena.

        Layers with big recurring allocations (im2col columns, GEMM
        outputs, gradient scratch) route them through the arena when one
        is installed and they are in training mode; ``None`` restores the
        allocating path. The trainer installs one arena per fit.
        """
        self._arena = arena
        for child in self._modules.values():
            child.set_arena(arena)
        return self

    def _scratch_arena(self, ref: np.ndarray):
        """The installed arena, or None when scratch reuse is off.

        Reuse is a training-only fast path over float32 buffers (``ref``
        is the tensor about to be processed); eval/serving and
        exotic-dtype inputs keep the allocating path, which is also what
        concurrent inference needs for thread safety.
        """
        if self.training and self._arena is not None and ref.dtype == np.float32:
            return self._arena
        return None

    # -- gradients ----------------------------------------------------------
    def zero_grad(self) -> None:
        """Reset gradients on every parameter."""
        for p in self.parameters():
            p.zero_grad()

    def clear_cache(self) -> None:
        """Drop cached forward tensors (subclasses override to free more)."""
        for child in self._modules.values():
            child.clear_cache()

    # -- compute -------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- introspection -------------------------------------------------------
    def num_parameters(self) -> int:
        """Total trainable scalar count."""
        return int(sum(p.data.size for p in self.parameters()))

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Shape (excluding batch) this module produces for ``input_shape``.

        Default: shape-preserving. Layers that change shape override this;
        the hardware compiler and the summary printer rely on it.
        """
        return tuple(input_shape)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"
