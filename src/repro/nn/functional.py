"""Vectorised tensor primitives: padding, im2col/col2im, pooling windows.

All convolutions in this library lower to GEMM via im2col. The forward
im2col is a zero-copy view built with
:func:`numpy.lib.stride_tricks.sliding_window_view`; the backward col2im
scatter-add loops only over the :math:`K \\times K` kernel offsets (9
iterations for the paper's 3x3 kernels) with everything else vectorised —
the standard high-performance numpy formulation.

Layout: activations are NHWC; weight tensors are ``(K, K, C_in, C_out)``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = [
    "conv_output_hw",
    "pad_nhwc",
    "im2col",
    "col2im",
    "pool_windows",
    "unpool_windows",
]


def conv_output_hw(
    in_hw: Tuple[int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> Tuple[int, int]:
    """Output spatial size of a convolution/pool with the given geometry."""
    h, w = in_hw
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel {kernel} with stride {stride}, padding {padding} does "
            f"not fit input {in_hw}"
        )
    return out_h, out_w


def pad_nhwc(x: np.ndarray, padding: Tuple[int, int], value: float = 0.0) -> np.ndarray:
    """Pad the spatial dims of an NHWC tensor with a constant."""
    ph, pw = padding
    if ph == 0 and pw == 0:
        return x
    return np.pad(
        x,
        ((0, 0), (ph, ph), (pw, pw), (0, 0)),
        mode="constant",
        constant_values=value,
    )


def im2col(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: Tuple[int, int] = (1, 1),
    padding: Tuple[int, int] = (0, 0),
    pad_value: float = 0.0,
    out: np.ndarray = None,
) -> np.ndarray:
    """Extract convolution patches from an NHWC tensor.

    Returns an array of shape ``(N, out_h, out_w, kh * kw * C)``. The last
    axis is ordered ``(kh, kw, C)`` — row-major over the kernel window with
    channels fastest — which matches the flattening of ``(K, K, C_in, C_out)``
    weights into a ``(K*K*C_in, C_out)`` GEMM operand, and is the order the
    hardware sliding-window unit streams.

    The returned array is a contiguous copy (the GEMM wants contiguity).
    ``out`` supplies a preallocated C-contiguous destination of the output
    shape and ``x.dtype`` (from a training scratch arena); patches are
    copied into it instead of a fresh allocation.
    """
    if x.ndim != 4:
        raise ValueError(f"expected NHWC input, got shape {x.shape}")
    kh, kw = kernel
    sh, sw = stride
    xp = pad_nhwc(x, padding, pad_value)
    # windows: (N, H', W', C, kh, kw) -> slice strides -> reorder to (kh,kw,C)
    windows = sliding_window_view(xp, (kh, kw), axis=(1, 2))
    windows = windows[:, ::sh, ::sw]  # (N, out_h, out_w, C, kh, kw)
    windows = windows.transpose(0, 1, 2, 4, 5, 3)  # (N, oh, ow, kh, kw, C)
    n, oh, ow = windows.shape[:3]
    c = x.shape[3]
    if out is None:
        return np.ascontiguousarray(windows).reshape(n, oh, ow, kh * kw * c)
    expected = (n, oh, ow, kh * kw * c)
    if out.shape != expected or out.dtype != x.dtype or not out.flags.c_contiguous:
        raise ValueError(
            f"out must be C-contiguous {expected} {x.dtype}, got "
            f"{out.shape} {out.dtype}"
        )
    np.copyto(out.reshape(n, oh, ow, kh, kw, c), windows, casting="no")
    return out


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int] = (1, 1),
    padding: Tuple[int, int] = (0, 0),
    scratch: np.ndarray = None,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add patch gradients back.

    ``cols`` has shape ``(N, out_h, out_w, kh * kw * C)``; returns a tensor
    of ``input_shape`` (NHWC). Pixels covered by multiple windows receive
    the sum of contributions, making this the exact transpose of im2col.

    ``scratch`` supplies a preallocated buffer of the *padded* input shape
    ``(N, H + 2*ph, W + 2*pw, C)`` and ``cols.dtype`` to accumulate into
    (it is zeroed here). With padding the returned tensor is a view into
    ``scratch``; the caller must consume it before reusing the buffer.
    """
    n, h, w, c = input_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h, out_w = conv_output_hw((h, w), kernel, stride, padding)
    if cols.shape != (n, out_h, out_w, kh * kw * c):
        raise ValueError(
            f"cols shape {cols.shape} inconsistent with input {input_shape}, "
            f"kernel {kernel}, stride {stride}, padding {padding}"
        )
    cols6 = cols.reshape(n, out_h, out_w, kh, kw, c)
    padded_shape = (n, h + 2 * ph, w + 2 * pw, c)
    if scratch is None:
        padded = np.zeros(padded_shape, dtype=cols.dtype)
    else:
        if scratch.shape != padded_shape or scratch.dtype != cols.dtype:
            raise ValueError(
                f"scratch must be {padded_shape} {cols.dtype}, got "
                f"{scratch.shape} {scratch.dtype}"
            )
        padded = scratch
        padded.fill(0)
    # Loop only over the (kh, kw) kernel offsets; each iteration adds one
    # strided slab — fully vectorised over batch and spatial dims.
    for i in range(kh):
        hi = i + sh * out_h
        for j in range(kw):
            wj = j + sw * out_w
            padded[:, i:hi:sh, j:wj:sw, :] += cols6[:, :, :, i, j, :]
    if ph == 0 and pw == 0:
        return padded
    return padded[:, ph : ph + h, pw : pw + w, :]


def pool_windows(
    x: np.ndarray,
    pool: Tuple[int, int],
    stride: Tuple[int, int],
    out: np.ndarray = None,
) -> np.ndarray:
    """Gather pooling windows: returns ``(N, out_h, out_w, kh*kw, C)``.

    Requires the input to tile exactly (no padding) — the paper's
    architectures only use 2x2/2 pooling on even feature maps, and the
    hardware max-pool unit has the same constraint. ``out`` supplies a
    preallocated C-contiguous destination of the output shape and
    ``x.dtype`` (training scratch arena).
    """
    if x.ndim != 4:
        raise ValueError(f"expected NHWC input, got shape {x.shape}")
    kh, kw = pool
    sh, sw = stride
    n, h, w, c = x.shape
    if (h - kh) % sh != 0 or (w - kw) % sw != 0:
        raise ValueError(
            f"pool {pool}/stride {stride} does not tile input {h}x{w} exactly"
        )
    windows = sliding_window_view(x, (kh, kw), axis=(1, 2))
    windows = windows[:, ::sh, ::sw]  # (N, oh, ow, C, kh, kw)
    oh, ow = windows.shape[1:3]
    windows = windows.transpose(0, 1, 2, 4, 5, 3)  # (N, oh, ow, kh, kw, C)
    if out is None:
        return np.ascontiguousarray(windows).reshape(n, oh, ow, kh * kw, c)
    expected = (n, oh, ow, kh * kw, c)
    if out.shape != expected or out.dtype != x.dtype or not out.flags.c_contiguous:
        raise ValueError(
            f"out must be C-contiguous {expected} {x.dtype}, got "
            f"{out.shape} {out.dtype}"
        )
    np.copyto(out.reshape(n, oh, ow, kh, kw, c), windows, casting="no")
    return out


def unpool_windows(
    grads: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    pool: Tuple[int, int],
    stride: Tuple[int, int],
    out: np.ndarray = None,
) -> np.ndarray:
    """Adjoint of :func:`pool_windows` for non-overlapping windows.

    ``grads`` has shape ``(N, out_h, out_w, kh*kw, C)``. Only supports
    ``stride == pool`` (non-overlapping), which is all the paper uses; the
    scatter then becomes a pure reshape/transpose with no accumulation.
    ``out`` supplies a preallocated C-contiguous ``input_shape`` buffer of
    ``grads.dtype`` to scatter into.
    """
    kh, kw = pool
    sh, sw = stride
    if (sh, sw) != (kh, kw):
        raise NotImplementedError("unpool only supports non-overlapping windows")
    n, h, w, c = input_shape
    oh, ow = grads.shape[1:3]
    if grads.shape != (n, oh, ow, kh * kw, c):
        raise ValueError(f"grads shape {grads.shape} inconsistent")
    if oh * kh != h or ow * kw != w:
        raise ValueError(
            f"pool {pool} does not tile input {h}x{w} exactly "
            f"(pool_windows would have rejected this input)"
        )
    g6 = grads.reshape(n, oh, ow, kh, kw, c)
    # Exact tiling: the scatter is a pure transpose + reshape, no adds.
    transposed = g6.transpose(0, 1, 3, 2, 4, 5)  # (N, oh, kh, ow, kw, C)
    if out is None:
        return np.ascontiguousarray(transposed).reshape(n, h, w, c)
    if (
        out.shape != tuple(input_shape)
        or out.dtype != grads.dtype
        or not out.flags.c_contiguous
    ):
        raise ValueError(
            f"out must be C-contiguous {tuple(input_shape)} {grads.dtype}, "
            f"got {out.shape} {out.dtype}"
        )
    np.copyto(out.reshape(n, oh, kh, ow, kw, c), transposed, casting="no")
    return out
