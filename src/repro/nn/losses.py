"""Loss functions (value + gradient w.r.t. logits in one call).

Losses are functions of raw logits; the softmax/normalisation lives inside
the loss so models end on a plain (binary-)dense layer, as the paper's
architectures do.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "squared_hinge",
    "get",
]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable row-wise softmax."""
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable row-wise log-softmax."""
    z = logits - logits.max(axis=1, keepdims=True)
    return z - np.log(np.exp(z).sum(axis=1, keepdims=True))


def _check_targets(logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
    if logits.ndim != 2:
        raise ValueError(f"logits must be (N, classes), got {logits.shape}")
    targets = np.asarray(targets)
    if targets.shape != (logits.shape[0],):
        raise ValueError(
            f"targets must be (N,) class indices, got {targets.shape} "
            f"for logits {logits.shape}"
        )
    if targets.min() < 0 or targets.max() >= logits.shape[1]:
        raise ValueError(
            f"target indices out of range [0, {logits.shape[1]}): "
            f"min={targets.min()}, max={targets.max()}"
        )
    return targets.astype(np.intp)


def cross_entropy(
    logits: np.ndarray,
    targets: np.ndarray,
    label_smoothing: float = 0.0,
) -> Tuple[float, np.ndarray]:
    """Mean softmax cross-entropy; returns ``(loss, dloss/dlogits)``.

    ``label_smoothing`` mixes the one-hot target with the uniform
    distribution — useful on the synthetic dataset where some rendered
    borderline mask positions are genuinely ambiguous.
    """
    targets = _check_targets(logits, targets)
    if not 0.0 <= label_smoothing < 1.0:
        raise ValueError(f"label_smoothing must be in [0, 1), got {label_smoothing}")
    n, k = logits.shape
    logp = log_softmax(logits.astype(np.float64))
    onehot = np.zeros((n, k), dtype=np.float64)
    onehot[np.arange(n), targets] = 1.0
    if label_smoothing > 0.0:
        soft = (1.0 - label_smoothing) * onehot + label_smoothing / k
    else:
        soft = onehot
    loss = float(-(soft * logp).sum() / n)
    grad = (np.exp(logp) - soft) / n
    return loss, grad.astype(np.float32)


def squared_hinge(
    logits: np.ndarray, targets: np.ndarray, margin: float = 1.0
) -> Tuple[float, np.ndarray]:
    """Mean multi-class squared hinge loss (the original BinaryNet loss).

    Encodes targets as ``+1`` for the true class and ``-1`` elsewhere and
    penalises ``max(0, margin - y*logit)^2``, averaged over samples and
    classes.
    """
    targets = _check_targets(logits, targets)
    if margin <= 0:
        raise ValueError(f"margin must be positive, got {margin}")
    n, k = logits.shape
    y = -np.ones((n, k), dtype=np.float32)
    y[np.arange(n), targets] = 1.0
    slack = np.maximum(0.0, margin - y * logits)
    loss = float((slack**2).mean())
    grad = (-2.0 * y * slack) / (n * k)
    return loss, grad.astype(np.float32)


_REGISTRY = {
    "cross_entropy": cross_entropy,
    "squared_hinge": squared_hinge,
}


def get(name_or_fn):
    """Look up a loss by name, or pass a callable through."""
    if callable(name_or_fn):
        return name_or_fn
    try:
        return _REGISTRY[name_or_fn]
    except KeyError:
        raise ValueError(
            f"unknown loss {name_or_fn!r}; known: {sorted(_REGISTRY)}"
        ) from None
