"""Learning-rate schedules.

A schedule maps ``epoch -> multiplier``; the trainer applies
``optimizer.lr = base_lr * schedule(epoch)`` at the start of each epoch.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

__all__ = ["constant", "step_decay", "cosine_decay", "warmup", "get"]

Schedule = Callable[[int], float]


def constant() -> Schedule:
    """No decay."""
    return lambda epoch: 1.0


def step_decay(drop_every: int, factor: float = 0.5) -> Schedule:
    """Multiply the LR by ``factor`` every ``drop_every`` epochs."""
    if drop_every <= 0:
        raise ValueError(f"drop_every must be positive, got {drop_every}")
    if not 0.0 < factor <= 1.0:
        raise ValueError(f"factor must be in (0, 1], got {factor}")
    return lambda epoch: factor ** (epoch // drop_every)


def cosine_decay(total_epochs: int, floor: float = 0.0) -> Schedule:
    """Cosine annealing from 1 to ``floor`` over ``total_epochs``."""
    if total_epochs <= 0:
        raise ValueError(f"total_epochs must be positive, got {total_epochs}")
    if not 0.0 <= floor < 1.0:
        raise ValueError(f"floor must be in [0, 1), got {floor}")

    def schedule(epoch: int) -> float:
        t = min(epoch, total_epochs) / total_epochs
        return floor + (1.0 - floor) * 0.5 * (1.0 + math.cos(math.pi * t))

    return schedule


def warmup(warmup_epochs: int, after: Schedule | None = None) -> Schedule:
    """Linear ramp from ~0 to 1 over ``warmup_epochs``, then ``after``."""
    if warmup_epochs <= 0:
        raise ValueError(f"warmup_epochs must be positive, got {warmup_epochs}")
    after = after or constant()

    def schedule(epoch: int) -> float:
        if epoch < warmup_epochs:
            return (epoch + 1) / warmup_epochs
        return after(epoch - warmup_epochs)

    return schedule


def get(name_or_fn, **kwargs) -> Schedule:
    """Build a schedule by name (``constant``/``step``/``cosine``)."""
    if callable(name_or_fn):
        return name_or_fn
    if name_or_fn == "constant":
        return constant()
    if name_or_fn == "step":
        return step_decay(**kwargs)
    if name_or_fn == "cosine":
        return cosine_decay(**kwargs)
    raise ValueError(
        f"unknown schedule {name_or_fn!r}; known: constant, step, cosine"
    )
