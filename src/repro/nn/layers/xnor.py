"""XNOR-Net-style binary layers with real-valued scaling factors.

§II-B of the paper discusses XNOR-Net [12] as the higher-capacity
alternative to plain BinaryNet: "the introduction of scaling factors
improves the information capacity of the network at the cost of more
trainable parameters ... this adds to the computational complexity of
XNOR-Net at deployment time. For the task of face-mask detection with
low scene complexity, more efficient forms of BNNs can be applied."

These layers implement the weight-scaling half of XNOR-Net so that the
trade-off can actually be measured (see ``benchmarks/bench_ablations``):
each output channel/neuron ``c`` carries a scale

    alpha_c = mean(|W_c|)

and the effective weight is ``alpha_c * sign(W_c)``. Crucially for
deployment, a *positive per-channel* scale followed by batch-norm+sign
folds into the integer threshold with **zero** extra hardware — the
compiler divides the threshold boundary by ``alpha_c`` — so hidden
XNOR-Net layers map onto the same MVTU. Only a final (un-thresholded)
logits layer would need real multipliers, which is why the compiler
still requires a plain :class:`~repro.nn.layers.dense.BinaryDense` head.
"""

from __future__ import annotations

import numpy as np

from repro.nn.binary_ops import sign, ste_grad
from repro.nn.layers.conv import BinaryConv2D
from repro.nn.layers.dense import BinaryDense

__all__ = ["XnorConv2D", "XnorDense", "channel_scales"]


def channel_scales(latent: np.ndarray) -> np.ndarray:
    """Per-output-channel XNOR-Net scales ``alpha_c = mean(|W_c|)``.

    ``latent`` is ``(K, K, C_in, C_out)`` or ``(in, out)``; the result is
    ``(C_out,)``. Scales are strictly positive for any non-degenerate
    latent tensor; an all-zero channel yields a tiny epsilon instead of
    zero so downstream folding never divides by zero.
    """
    axes = tuple(range(latent.ndim - 1))
    alpha = np.abs(latent).mean(axis=axes)
    return np.maximum(alpha, 1e-12).astype(np.float32)


class XnorConv2D(BinaryConv2D):
    """Binary convolution with XNOR-Net per-filter scaling.

    Forward uses ``alpha_c * sign(W_c)``; backward follows the XNOR-Net
    STE (gradient through both the sign and, implicitly, the scale —
    approximated by the straight-through pass used in practice).
    """

    def effective_weight(self) -> np.ndarray:
        alpha = channel_scales(self.weight.data)
        return sign(self.weight.data) * alpha

    def _weight_grad_to_latent(self, grad_w: np.ndarray) -> np.ndarray:
        # Pass-through on the binarisation; the alpha factor rescales the
        # gradient per channel (the first-order term of the XNOR-Net
        # update rule).
        alpha = channel_scales(self.weight.data)
        return ste_grad(grad_w * alpha, self.weight.data, self.ste)

    def output_scales(self) -> np.ndarray:
        """The per-channel scales (what the compiler folds away)."""
        return channel_scales(self.weight.data)


class XnorDense(BinaryDense):
    """Binary dense layer with XNOR-Net per-neuron scaling."""

    def effective_weight(self) -> np.ndarray:
        alpha = channel_scales(self.weight.data)
        return sign(self.weight.data) * alpha

    def _weight_grad_to_latent(self, grad_w: np.ndarray) -> np.ndarray:
        alpha = channel_scales(self.weight.data)
        return ste_grad(grad_w * alpha, self.weight.data, self.ste)

    def output_scales(self) -> np.ndarray:
        """The per-neuron scales (what the compiler folds away)."""
        return channel_scales(self.weight.data)
