"""Batch normalisation (per-channel) for NHWC and flat tensors.

Batch-norm is load-bearing in BNNs: §III-A requires inputs to be adjusted
to zero mean / unit variance *before* ``sign``, and at deployment time the
whole ``BatchNorm -> sign`` pair collapses into a single integer threshold
comparison per channel (see :mod:`repro.hw.thresholding`). This layer
therefore exposes its statistics (:meth:`fused_scale_shift`) in exactly
the form the hardware compiler consumes.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.module import Module, Parameter

__all__ = ["BatchNorm"]


class BatchNorm(Module):
    """Per-channel batch normalisation over the trailing axis.

    Works for both ``(N, H, W, C)`` and ``(N, C)`` tensors: statistics are
    computed over all axes except the last. Maintains exponential running
    statistics for inference mode.
    """

    def __init__(
        self,
        num_features: int,
        momentum: float = 0.1,
        eps: float = 1e-5,
        affine: bool = True,
    ) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError(f"num_features must be positive, got {num_features}")
        if not 0.0 < momentum <= 1.0:
            raise ValueError(f"momentum must be in (0, 1], got {momentum}")
        self.num_features = int(num_features)
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.affine = bool(affine)
        if affine:
            self.register_parameter(
                "gamma",
                Parameter(np.ones(num_features, dtype=np.float32), weight_decay=False),
            )
            self.register_parameter(
                "beta",
                Parameter(np.zeros(num_features, dtype=np.float32), weight_decay=False),
            )
        else:
            self.gamma: Optional[Parameter] = None
            self.beta: Optional[Parameter] = None
        self.running_mean = np.zeros(num_features, dtype=np.float32)
        self.running_var = np.ones(num_features, dtype=np.float32)
        self.num_batches_tracked = 0
        self._cache = None

    def _check(self, x: np.ndarray) -> None:
        if x.ndim not in (2, 4) or x.shape[-1] != self.num_features:
            raise ValueError(
                f"BatchNorm({self.num_features}) got incompatible input "
                f"shape {x.shape}"
            )

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._check(x)
        axes = tuple(range(x.ndim - 1))
        arena = self._scratch_arena(x)
        centred = None
        if self.training:
            mean = x.mean(axis=axes)
            if arena is None:
                var = x.var(axis=axes)
            else:
                # Fused statistics: centre once into scratch, square into
                # scratch, reduce — the centred tensor is then reused for
                # x_hat below instead of recomputing (x - mean).
                centred = np.subtract(x, mean, out=arena.get(self, "centred", x.shape))
                sq = np.multiply(centred, centred, out=arena.get(self, "sq", x.shape))
                var = sq.mean(axis=axes)
            n = x.size // self.num_features
            if n <= 1:
                raise ValueError(
                    "BatchNorm training forward needs more than one sample "
                    f"per channel, got reduction size {n}"
                )
            # Update running stats with the unbiased variance estimate.
            unbiased = var * n / (n - 1)
            self.running_mean += self.momentum * (mean - self.running_mean)
            self.running_var += self.momentum * (unbiased - self.running_var)
            self.num_batches_tracked += 1
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        if centred is None:
            x_hat = (x - mean) * inv_std
            out = x_hat
            if self.affine:
                out = x_hat * self.gamma.data + self.beta.data
        else:
            x_hat = np.multiply(centred, inv_std, out=centred)
            out = x_hat
            if self.affine:
                out = np.multiply(
                    x_hat, self.gamma.data, out=arena.get(self, "out", x.shape)
                )
                out += self.beta.data
        # Cache in both modes: inference-mode backward is what Grad-CAM
        # uses (running statistics are constants there, so the backward
        # formula differs from the training one).
        self._cache = (
            x_hat.astype(np.float32, copy=False),
            inv_std.astype(np.float32, copy=False),
            bool(self.training),
        )
        return out.astype(np.float32, copy=False)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called without a preceding forward")
        x_hat, inv_std, used_batch_stats = self._cache
        axes = tuple(range(grad_output.ndim - 1))
        # Scratch reuse in backward additionally requires the affine form:
        # without it ``g`` aliases ``grad_output`` (a buffer this layer
        # does not own) and the in-place updates below would corrupt it.
        arena = self._scratch_arena(grad_output) if self.affine else None
        scratch = (
            arena.get(self, "scratch", grad_output.shape) if arena is not None else None
        )
        if self.affine:
            if scratch is None:
                self.gamma.accumulate_grad((grad_output * x_hat).sum(axis=axes))
                g = grad_output * self.gamma.data
            else:
                self.gamma.accumulate_grad(
                    np.multiply(grad_output, x_hat, out=scratch).sum(axis=axes)
                )
                g = np.multiply(
                    grad_output, self.gamma.data, out=arena.get(self, "g", grad_output.shape)
                )
            self.beta.accumulate_grad(grad_output.sum(axis=axes))
        else:
            g = grad_output
        if not used_batch_stats:
            # Running stats are constants: BN is a per-channel affine map.
            if scratch is None:
                return (g * inv_std).astype(np.float32, copy=False)
            np.multiply(g, inv_std, out=g)
            return g
        # Standard batch-norm backward (batch statistics participate).
        g_mean = g.mean(axis=axes)
        if scratch is None:
            gx_mean = (g * x_hat).mean(axis=axes)
            return ((g - g_mean - x_hat * gx_mean) * inv_std).astype(
                np.float32, copy=False
            )
        gx_mean = np.multiply(g, x_hat, out=scratch).mean(axis=axes)
        np.subtract(g, g_mean, out=g)
        np.subtract(g, np.multiply(x_hat, gx_mean, out=scratch), out=g)
        np.multiply(g, inv_std, out=g)
        return g

    # -- deployment interface --------------------------------------------------
    def fused_scale_shift(self) -> Tuple[np.ndarray, np.ndarray]:
        """Inference-time affine form: returns ``(scale, shift)`` such that
        ``BN(x) = scale * x + shift`` per channel.

        This is what the hardware compiler folds (together with ``sign``)
        into per-channel thresholds.
        """
        inv_std = 1.0 / np.sqrt(self.running_var + self.eps)
        if self.affine:
            scale = self.gamma.data * inv_std
            shift = self.beta.data - self.gamma.data * self.running_mean * inv_std
        else:
            scale = inv_std
            shift = -self.running_mean * inv_std
        return scale.astype(np.float32), shift.astype(np.float32)

    def clear_cache(self) -> None:
        self._cache = None
        super().clear_cache()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BatchNorm({self.num_features})"
