"""2-D convolution layers: full-precision and binary-weight variants.

Both lower to GEMM via im2col. :class:`BinaryConv2D` implements the paper's
Eq. 2/3 weight path: latent FP32 weights are binarised with ``sign`` in the
forward pass and trained through a straight-through estimator; the layer's
input is whatever the previous activation produced (binary ``{-1,+1}``
except for the first layer, which sees the RGB image — exactly as in
BinaryNet/FINN, where layer 1 consumes fixed-point pixels).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn import initializers
from repro.nn.binary_ops import STEVariant, sign, ste_grad
from repro.nn.module import Module, Parameter
from repro.utils.rng import RngLike
from repro.utils.tensor_checks import as_pair

__all__ = ["Conv2D", "BinaryConv2D"]


class Conv2D(Module):
    """Full-precision 2-D convolution (NHWC in, NHWC out).

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts; weights are ``(K, K, C_in, C_out)``.
    kernel_size, stride, padding:
        Ints or pairs. The paper uses ``K=3``, stride 1, no padding
        ("valid"), matching the FINN CNV topology.
    use_bias:
        The paper's layers are all followed by batch-norm, which absorbs
        any bias, so the default is ``False``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size=3,
        stride=1,
        padding=0,
        use_bias: bool = False,
        initializer="glorot_uniform",
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError(
                f"channel counts must be positive, got {in_channels}, {out_channels}"
            )
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = as_pair(kernel_size, "kernel_size")
        self.stride = as_pair(stride, "stride")
        self.padding = as_pair(padding, "padding")
        init = initializers.get(initializer)
        kh, kw = self.kernel_size
        self.register_parameter(
            "weight",
            Parameter(init((kh, kw, self.in_channels, self.out_channels), rng)),
        )
        if use_bias:
            self.register_parameter(
                "bias",
                Parameter(
                    np.zeros(self.out_channels, dtype=np.float32),
                    weight_decay=False,
                ),
            )
        else:
            self.bias: Optional[Parameter] = None
        self._cache = None

    # -- shape ---------------------------------------------------------------
    def output_shape(self, input_shape):
        h, w, c = input_shape
        if c != self.in_channels:
            raise ValueError(
                f"{type(self).__name__} expects {self.in_channels} input "
                f"channels, got shape {input_shape}"
            )
        oh, ow = F.conv_output_hw((h, w), self.kernel_size, self.stride, self.padding)
        return (oh, ow, self.out_channels)

    # -- weight materialisation (overridden by the binary variant) -----------
    def effective_weight(self) -> np.ndarray:
        """Weight tensor actually convolved in the forward pass."""
        return self.weight.data

    def _weight_grad_to_latent(self, grad_w: np.ndarray) -> np.ndarray:
        """Map gradient w.r.t. effective weight back to the latent weight."""
        return grad_w

    # -- compute --------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[3] != self.in_channels:
            raise ValueError(
                f"{type(self).__name__} expected (N,H,W,{self.in_channels}), "
                f"got {x.shape}"
            )
        w_eff = self.effective_weight()
        n = x.shape[0]
        oh, ow = F.conv_output_hw(
            (x.shape[1], x.shape[2]), self.kernel_size, self.stride, self.padding
        )
        kh, kw = self.kernel_size
        patch = kh * kw * self.in_channels
        w2d = w_eff.reshape(patch, self.out_channels)
        arena = self._scratch_arena(x)
        if arena is None:
            cols = F.im2col(x, self.kernel_size, self.stride, self.padding)
            out = cols.reshape(-1, patch) @ w2d
        else:
            cols = F.im2col(
                x,
                self.kernel_size,
                self.stride,
                self.padding,
                out=arena.get(self, "cols", (n, oh, ow, patch)),
            )
            out = arena.get(self, "out", (n * oh * ow, self.out_channels))
            np.matmul(cols.reshape(-1, patch), w2d, out=out)
        out = out.reshape(n, oh, ow, self.out_channels)
        if self.bias is not None:
            out += self.bias.data
        if self.training:
            self._cache = (x.shape, cols, w_eff)
        else:
            self._cache = None
        return out.astype(np.float32, copy=False)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(
                "backward called without a preceding training-mode forward"
            )
        x_shape, cols, w_eff = self._cache
        n, oh, ow, _ = grad_output.shape
        patch = cols.shape[3]
        g2d = grad_output.reshape(-1, self.out_channels)
        # dL/dW_eff = cols^T @ g
        grad_w = (cols.reshape(-1, patch).T @ g2d).reshape(w_eff.shape)
        self.weight.accumulate_grad(self._weight_grad_to_latent(grad_w))
        if self.bias is not None:
            self.bias.accumulate_grad(g2d.sum(axis=0))
        # dL/dcols = g @ W_eff^T, scattered back to the input.
        w2d_t = w_eff.reshape(patch, self.out_channels).T
        arena = self._scratch_arena(grad_output)
        if arena is None or cols.dtype != np.float32:
            grad_cols = (g2d @ w2d_t).reshape(n, oh, ow, patch)
            return F.col2im(
                grad_cols, x_shape, self.kernel_size, self.stride, self.padding
            )
        grad_cols = arena.get(self, "grad_cols", (n * oh * ow, patch))
        np.matmul(g2d, w2d_t, out=grad_cols)
        grad_cols = grad_cols.reshape(n, oh, ow, patch)
        ph, pw = self.padding
        _, h, w, c = x_shape
        scratch = arena.get(self, "col2im", (n, h + 2 * ph, w + 2 * pw, c))
        return F.col2im(
            grad_cols,
            x_shape,
            self.kernel_size,
            self.stride,
            self.padding,
            scratch=scratch,
        )

    def clear_cache(self) -> None:
        self._cache = None
        super().clear_cache()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}({self.in_channels}->{self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.padding})"
        )


class BinaryConv2D(Conv2D):
    """Convolution with 1-bit weights (latent FP32, ``sign`` in forward).

    The straight-through estimator passes ``dL/dW_bin`` back to the latent
    weight; with ``ste="clipped"`` the gradient is masked where the latent
    magnitude exceeds 1 (BinaryNet). The optimizer additionally clips
    latent weights to ``[-1, 1]`` after each update (``latent_binary``
    flag on the parameter).
    """

    def __init__(self, *args, ste: STEVariant = "clipped", **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.ste = ste
        self.weight.latent_binary = True
        # Binary layers do not use L2 decay: it fights the sign objective.
        self.weight.weight_decay = False

    def effective_weight(self) -> np.ndarray:
        w = self.weight.data
        arena = self._scratch_arena(w)
        if arena is None:
            return sign(w)
        return sign(w, out=arena.get(self, "w_sign", w.shape))

    def _weight_grad_to_latent(self, grad_w: np.ndarray) -> np.ndarray:
        return ste_grad(grad_w, self.weight.data, self.ste)
