"""Max pooling.

In the BNN deployment, pooling is applied to *binary* feature maps, where
``max`` degenerates to boolean OR (a single +1 in the window forces the
output to +1) — the trick §III-B exploits in hardware. The software layer
here is a general float max-pool so it can also sit in FP32 baselines; the
binary-OR equivalence is asserted by tests and by the hardware compiler.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module
from repro.utils.tensor_checks import as_pair

__all__ = ["MaxPool2D"]


class MaxPool2D(Module):
    """Non-overlapping max pooling (default 2x2, stride = pool size)."""

    def __init__(self, pool_size=2, stride=None) -> None:
        super().__init__()
        self.pool_size = as_pair(pool_size, "pool_size")
        self.stride = as_pair(stride, "stride") if stride is not None else self.pool_size
        if self.stride != self.pool_size:
            raise NotImplementedError(
                "MaxPool2D supports only non-overlapping windows "
                "(stride == pool_size), which is all the paper uses"
            )

    def output_shape(self, input_shape):
        h, w, c = input_shape
        oh, ow = F.conv_output_hw((h, w), self.pool_size, self.stride, (0, 0))
        return (oh, ow, c)

    def forward(self, x: np.ndarray) -> np.ndarray:
        arena = self._scratch_arena(x)
        if arena is None:
            windows = F.pool_windows(x, self.pool_size, self.stride)
            out = windows.max(axis=3)
        else:
            n, h, w, c = x.shape
            kh, kw = self.pool_size
            oh, ow = F.conv_output_hw((h, w), self.pool_size, self.stride, (0, 0))
            windows = F.pool_windows(
                x,
                self.pool_size,
                self.stride,
                out=arena.get(self, "windows", (n, oh, ow, kh * kw, c)),
            )
            out = windows.max(axis=3, out=arena.get(self, "out", (n, oh, ow, c)))
        if self.training:
            # Route gradients only through the first maximal element of each
            # window (ties broken by argmax), matching subgradient practice.
            argmax = windows.argmax(axis=3)
            self._cache = (x.shape, argmax)
        else:
            self._cache = None
        return out.astype(np.float32, copy=False)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(
                "backward called without a preceding training-mode forward"
            )
        x_shape, argmax = self._cache
        kh, kw = self.pool_size
        n, oh, ow, c = grad_output.shape
        arena = self._scratch_arena(grad_output)
        if arena is None:
            window_grads = np.zeros((n, oh, ow, kh * kw, c), dtype=np.float32)
        else:
            window_grads = arena.get(self, "window_grads", (n, oh, ow, kh * kw, c))
            window_grads.fill(0)
        np.put_along_axis(
            window_grads, argmax[:, :, :, None, :], grad_output[:, :, :, None, :], axis=3
        )
        unpool_out = (
            arena.get(self, "unpool", x_shape) if arena is not None else None
        )
        return F.unpool_windows(
            window_grads, x_shape, self.pool_size, self.stride, out=unpool_out
        )

    def clear_cache(self) -> None:
        self._cache = None
        super().clear_cache()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MaxPool2D({self.pool_size})"
