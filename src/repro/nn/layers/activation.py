"""Activation layers: binarising sign (with STE), ReLU, HardTanh."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.binary_ops import STEVariant, sign, ste_grad, stochastic_sign
from repro.nn.module import Module
from repro.utils.rng import RngLike, as_generator

__all__ = ["SignActivation", "ReLU", "HardTanh"]


class SignActivation(Module):
    """Binarising activation :math:`h = \\mathrm{sign}(a)` (Eq. 2).

    Forward maps every element to ``{-1, +1}``; backward applies the
    straight-through estimator. With the default clipped STE this layer
    behaves like a hard-tanh whose output has been rounded to its
    saturation values — the standard BinaryNet activation.

    With ``stochastic=True`` the *training* forward samples the sign with
    probability ``hard_sigmoid(x)`` (the regularising variant of [13]);
    inference always binarises deterministically, matching the hardware.
    """

    def __init__(
        self,
        ste: STEVariant = "clipped",
        stochastic: bool = False,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        self.ste = ste
        self.stochastic = bool(stochastic)
        self._rng = as_generator(rng) if stochastic else None
        self._cache: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache = x if self.training else None
        if self.stochastic and self.training:
            return stochastic_sign(x, self._rng)
        arena = self._scratch_arena(x)
        if arena is None:
            return sign(x)
        return sign(x, out=arena.get(self, "out", x.shape))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(
                "backward called without a preceding training-mode forward"
            )
        arena = self._scratch_arena(grad_output)
        if arena is None or self._cache.dtype != np.float32:
            return ste_grad(grad_output, self._cache, self.ste)
        return ste_grad(
            grad_output,
            self._cache,
            self.ste,
            out=arena.get(self, "grad", grad_output.shape),
        )

    def clear_cache(self) -> None:
        self._cache = None
        super().clear_cache()


class ReLU(Module):
    """Rectified linear unit (used by the FP32 comparison model)."""

    def __init__(self) -> None:
        super().__init__()
        self._cache: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.maximum(x, 0.0).astype(np.float32, copy=False)
        self._cache = (x > 0) if self.training else None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(
                "backward called without a preceding training-mode forward"
            )
        return (grad_output * self._cache).astype(np.float32, copy=False)

    def clear_cache(self) -> None:
        self._cache = None
        super().clear_cache()


class HardTanh(Module):
    """Saturating linear activation ``clip(x, -1, 1)``.

    The smooth proxy of ``sign``; useful for ablations that replace
    binarisation with its relaxed counterpart.
    """

    def __init__(self) -> None:
        super().__init__()
        self._cache: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.clip(x, -1.0, 1.0).astype(np.float32, copy=False)
        self._cache = (np.abs(x) <= 1.0) if self.training else None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(
                "backward called without a preceding training-mode forward"
            )
        return (grad_output * self._cache).astype(np.float32, copy=False)

    def clear_cache(self) -> None:
        self._cache = None
        super().clear_cache()
