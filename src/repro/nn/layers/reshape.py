"""Shape adapters between convolutional (NHWC) and dense (NC) stages."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.module import Module

__all__ = ["Flatten"]


class Flatten(Module):
    """Flatten ``(N, H, W, C)`` to ``(N, H*W*C)``.

    The flattening order (H, then W, then C — numpy C-order) is part of
    the model contract: the hardware compiler reuses it when laying out
    the first fully-connected layer's weight matrix.
    """

    def __init__(self) -> None:
        super().__init__()
        self._cache: Optional[Tuple[int, ...]] = None

    def output_shape(self, input_shape):
        size = 1
        for dim in input_shape:
            size *= int(dim)
        return (size,)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        return grad_output.reshape(self._cache)

    def clear_cache(self) -> None:
        self._cache = None
        super().clear_cache()
