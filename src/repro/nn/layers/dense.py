"""Fully-connected layers: full-precision and binary-weight variants."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import initializers
from repro.nn.binary_ops import STEVariant, sign, ste_grad
from repro.nn.module import Module, Parameter
from repro.utils.rng import RngLike

__all__ = ["Dense", "BinaryDense"]


class Dense(Module):
    """Affine layer ``y = x W (+ b)`` with weights ``(in, out)``.

    Input is ``(N, in_features)``; use a Flatten layer ahead of this when
    coming from a convolutional stack.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        use_bias: bool = False,
        initializer="glorot_uniform",
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"feature counts must be positive, got {in_features}, {out_features}"
            )
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        init = initializers.get(initializer)
        self.register_parameter(
            "weight", Parameter(init((self.in_features, self.out_features), rng))
        )
        if use_bias:
            self.register_parameter(
                "bias",
                Parameter(
                    np.zeros(self.out_features, dtype=np.float32),
                    weight_decay=False,
                ),
            )
        else:
            self.bias: Optional[Parameter] = None
        self._cache: Optional[np.ndarray] = None

    def output_shape(self, input_shape):
        if len(input_shape) != 1 or input_shape[0] != self.in_features:
            raise ValueError(
                f"{type(self).__name__} expects ({self.in_features},), "
                f"got {input_shape}"
            )
        return (self.out_features,)

    def effective_weight(self) -> np.ndarray:
        """Weight matrix actually multiplied in the forward pass."""
        return self.weight.data

    def _weight_grad_to_latent(self, grad_w: np.ndarray) -> np.ndarray:
        return grad_w

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"{type(self).__name__} expected (N, {self.in_features}), "
                f"got {x.shape}"
            )
        w_eff = self.effective_weight()
        arena = self._scratch_arena(x)
        if arena is None:
            out = x @ w_eff
        else:
            out = arena.get(self, "out", (x.shape[0], self.out_features))
            np.matmul(x, w_eff, out=out)
        if self.bias is not None:
            out += self.bias.data
        self._cache = (x, w_eff) if self.training else None
        return out.astype(np.float32, copy=False)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(
                "backward called without a preceding training-mode forward"
            )
        x, w_eff = self._cache
        self.weight.accumulate_grad(self._weight_grad_to_latent(x.T @ grad_output))
        if self.bias is not None:
            self.bias.accumulate_grad(grad_output.sum(axis=0))
        arena = self._scratch_arena(grad_output)
        if arena is None:
            return grad_output @ w_eff.T
        grad_in = arena.get(self, "grad_in", (grad_output.shape[0], self.in_features))
        np.matmul(grad_output, w_eff.T, out=grad_in)
        return grad_in

    def clear_cache(self) -> None:
        self._cache = None
        super().clear_cache()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.in_features}->{self.out_features})"


class BinaryDense(Dense):
    """Fully-connected layer with 1-bit weights (latent FP32 + STE)."""

    def __init__(self, *args, ste: STEVariant = "clipped", **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.ste = ste
        self.weight.latent_binary = True
        self.weight.weight_decay = False

    def effective_weight(self) -> np.ndarray:
        w = self.weight.data
        arena = self._scratch_arena(w)
        if arena is None:
            return sign(w)
        return sign(w, out=arena.get(self, "w_sign", w.shape))

    def _weight_grad_to_latent(self, grad_w: np.ndarray) -> np.ndarray:
        return ste_grad(grad_w, self.weight.data, self.ste)
