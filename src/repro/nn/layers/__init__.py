"""Layer zoo for the numpy neural-network substrate."""

from repro.nn.layers.activation import HardTanh, ReLU, SignActivation
from repro.nn.layers.batchnorm import BatchNorm
from repro.nn.layers.conv import BinaryConv2D, Conv2D
from repro.nn.layers.dense import BinaryDense, Dense
from repro.nn.layers.pooling import MaxPool2D
from repro.nn.layers.reshape import Flatten
from repro.nn.layers.xnor import XnorConv2D, XnorDense

__all__ = [
    "BatchNorm",
    "BinaryConv2D",
    "BinaryDense",
    "Conv2D",
    "Dense",
    "Flatten",
    "HardTanh",
    "MaxPool2D",
    "ReLU",
    "SignActivation",
    "XnorConv2D",
    "XnorDense",
]
