"""Binarisation primitives: sign(), straight-through estimators, packing prep.

Implements §III-A of the paper: the deterministic ``sign`` binarisation of
Eq. 1 (with the convention ``sign(0) = +1``), and the straight-through
estimator (STE) used to propagate gradients through it. Two STE variants
are provided:

* ``"identity"`` — pure pass-through (BinaryConnect [13]);
* ``"clipped"`` — pass-through gated on ``|x| <= 1`` (BinaryNet [11],
  equivalent to differentiating a hard-tanh). This is the paper's default.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

__all__ = [
    "sign",
    "ste_grad",
    "STEVariant",
    "binary_tanh_forward",
    "hard_sigmoid",
    "stochastic_sign",
]

STEVariant = Literal["identity", "clipped"]

_STE_VARIANTS = ("identity", "clipped")


def sign(x: np.ndarray, out: np.ndarray = None) -> np.ndarray:
    """Deterministic binarisation per Eq. 1: ``+1`` if ``x >= 0`` else ``-1``.

    Note this differs from :func:`numpy.sign` (which maps 0 to 0); the
    hardware expresses ``-1`` as bit 0 and ``+1`` as bit 1, so zero must
    bind to one of the two values — the paper (and FINN) choose ``+1``.

    ``out`` supplies a preallocated float32 destination of ``x``'s shape
    (from a training scratch arena); it must not alias ``x``.
    """
    x = np.asarray(x)
    if out is None:
        out = np.empty(x.shape, dtype=np.float32)
    elif out.shape != x.shape or out.dtype != np.float32:
        raise ValueError(
            f"out must be float32 of shape {x.shape}, got {out.shape} {out.dtype}"
        )
    # Branchless 1 - 2*(x < 0): both outputs are the exact constants
    # +/-1.0, so this matches a masked-negation formulation bit for bit
    # while avoiding its (much slower) masked ufunc inner loop.
    np.multiply(x < 0, np.float32(-2.0), out=out)
    np.add(out, np.float32(1.0), out=out)
    return out


def ste_grad(
    grad_output: np.ndarray,
    pre_activation: np.ndarray,
    variant: STEVariant = "clipped",
    out: np.ndarray = None,
) -> np.ndarray:
    """Gradient of the loss w.r.t. the *input* of ``sign`` under an STE.

    Parameters
    ----------
    grad_output:
        Gradient w.r.t. the binarised output.
    pre_activation:
        The (latent) values that were binarised in the forward pass.
    variant:
        ``"identity"`` passes the gradient through unchanged;
        ``"clipped"`` zeroes it where ``|pre_activation| > 1``, which both
        stabilises training and prevents latent values from drifting once
        saturated.
    out:
        Optional preallocated float32 destination of ``grad_output``'s
        shape; may alias neither input.
    """
    if variant not in _STE_VARIANTS:
        raise ValueError(
            f"unknown STE variant {variant!r}; expected one of {_STE_VARIANTS}"
        )
    if variant == "identity":
        if out is None:
            return grad_output.astype(np.float32, copy=True)
        np.copyto(out, grad_output, casting="same_kind")
        return out
    if out is None:
        mask = (np.abs(pre_activation) <= 1.0).astype(np.float32)
        return grad_output * mask
    np.abs(pre_activation, out=out)
    mask = np.less_equal(out, 1.0)
    np.multiply(grad_output, mask, out=out)
    return out


def hard_sigmoid(x: np.ndarray) -> np.ndarray:
    """``clip((x + 1) / 2, 0, 1)`` — BinaryNet's binarisation probability."""
    return np.clip((np.asarray(x, dtype=np.float32) + 1.0) * 0.5, 0.0, 1.0)


def stochastic_sign(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Stochastic binarisation: ``+1`` with probability ``hard_sigmoid(x)``.

    The training-time regulariser from Courbariaux et al. [13]/[11]: the
    expectation equals the hard-tanh of ``x``, so the estimator is
    unbiased within the linear region while injecting quantisation noise.
    Inference always uses the deterministic :func:`sign` (hardware has no
    RNG in the datapath), which is why the activation layer only applies
    this in training mode.
    """
    p = hard_sigmoid(x)
    draws = rng.random(size=p.shape)
    return np.where(draws < p, 1.0, -1.0).astype(np.float32)


def binary_tanh_forward(x: np.ndarray) -> np.ndarray:
    """Alias of :func:`sign` named after its smooth proxy (hard-tanh).

    Provided for readability at call sites that think of the activation as
    a binarised tanh rather than a weight binariser.
    """
    return sign(x)
