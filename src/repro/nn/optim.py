"""Optimizers: SGD with momentum, and Adam.

Both honour the two BNN-specific parameter flags:

* ``latent_binary`` — after each update the latent weight is clipped to
  ``[-1, 1]`` (BinaryConnect), keeping it inside the clipped-STE window;
* ``weight_decay`` — decay is skipped for binary latent weights, biases
  and batch-norm parameters.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float,
        weight_decay: float = 0.0,
        clip_latent: bool = True,
    ) -> None:
        params = list(params)
        if not params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if weight_decay < 0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        self.params = params
        self.lr = float(lr)
        self.weight_decay = float(weight_decay)
        self.clip_latent = bool(clip_latent)
        self.steps = 0

    def zero_grad(self) -> None:
        """Reset gradients on all managed parameters."""
        for p in self.params:
            p.zero_grad()

    def _decayed_grad(self, p: Parameter) -> np.ndarray:
        """Gradient with L2 weight decay applied where configured."""
        if p.grad is None:
            raise RuntimeError(
                f"parameter {p.name} has no gradient; "
                "did you run backward before step()?"
            )
        grad = p.grad
        if self.weight_decay > 0.0 and p.weight_decay:
            grad = grad + self.weight_decay * p.data
        return grad

    def _post_update(self, p: Parameter) -> None:
        """Latent-weight clipping hook (runs after every parameter update)."""
        if self.clip_latent and p.latent_binary:
            np.clip(p.data, -1.0, 1.0, out=p.data)

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        clip_latent: bool = True,
    ) -> None:
        super().__init__(params, lr, weight_decay, clip_latent)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity: Dict[int, np.ndarray] = {}
        self._scratch: Dict[int, np.ndarray] = {}

    def _scratch_for(self, p: Parameter) -> np.ndarray:
        """Persistent per-parameter temp (parameter shapes never change)."""
        t = self._scratch.get(id(p))
        if t is None:
            t = np.empty_like(p.data)
            self._scratch[id(p)] = t
        return t

    def step(self) -> None:
        """Apply one update to every managed parameter (in place)."""
        self.steps += 1
        for p in self.params:
            grad = self._decayed_grad(p)
            t = self._scratch_for(p)
            if self.momentum > 0.0:
                v = self._velocity.get(id(p))
                if v is None:
                    v = np.zeros_like(p.data)
                    self._velocity[id(p)] = v
                v *= self.momentum
                v -= np.multiply(self.lr, grad, out=t)
                p.data += v
            else:
                p.data -= np.multiply(self.lr, grad, out=t)
            self._post_update(p)


class Adam(Optimizer):
    """Adam (Kingma & Ba) — the optimizer used to train BinaryNet models.

    The per-parameter adaptive step is particularly important for latent
    binary weights, whose raw gradients are tiny relative to the ±1 scale.
    """

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        clip_latent: bool = True,
    ) -> None:
        super().__init__(params, lr, weight_decay, clip_latent)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._scratch: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    def step(self) -> None:
        """Apply one bias-corrected Adam update to every parameter.

        Every arithmetic step runs ``out=``-style into two persistent
        per-parameter scratch buffers, in the same operation order as the
        textbook expressions (see the trailing comments) — bit-identical
        results, zero steady-state allocation.
        """
        self.steps += 1
        bc1 = 1.0 - self.beta1**self.steps
        bc2 = 1.0 - self.beta2**self.steps
        for p in self.params:
            grad = self._decayed_grad(p)
            m = self._m.get(id(p))
            if m is None:
                m = np.zeros_like(p.data)
                v = np.zeros_like(p.data)
                self._m[id(p)] = m
                self._v[id(p)] = v
            else:
                v = self._v[id(p)]
            s = self._scratch.get(id(p))
            if s is None:
                s = (np.empty_like(p.data), np.empty_like(p.data))
                self._scratch[id(p)] = s
            t, u = s
            m *= self.beta1
            m += np.multiply(1.0 - self.beta1, grad, out=t)
            v *= self.beta2
            np.multiply(1.0 - self.beta2, grad, out=t)
            v += np.multiply(t, grad, out=t)
            np.divide(m, bc1, out=t)  # update = (m / bc1)
            np.divide(v, bc2, out=u)  # ... / (sqrt(v / bc2) + eps)
            np.sqrt(u, out=u)
            u += self.eps
            np.divide(t, u, out=t)
            p.data -= np.multiply(self.lr, t, out=t)
            self._post_update(p)
