"""Per-layer wall-clock profiling of a Sequential model.

"No optimization without measuring" (the optimisation-workflow rule this
codebase follows): before touching a kernel, find the layer that owns
the time. :class:`LayerProfiler` runs a model forward (and optionally
backward) while timing every layer, and reports per-layer milliseconds,
share of total, and MAC counts — the software-side mirror of the
hardware pipeline's per-stage initiation intervals.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.layers import BinaryConv2D, BinaryDense, Conv2D, Dense
from repro.nn.sequential import Sequential
from repro.utils.tables import render_table

__all__ = ["LayerTiming", "ProfileResult", "LayerProfiler"]


@dataclass
class LayerTiming:
    """Accumulated timing for one layer."""

    name: str
    kind: str
    forward_s: float = 0.0
    backward_s: float = 0.0
    calls: int = 0
    macs: int = 0

    @property
    def total_s(self) -> float:
        return self.forward_s + self.backward_s


@dataclass
class ProfileResult:
    """Per-layer timing table for one profiled run."""

    timings: List[LayerTiming]
    batch_size: int
    repeats: int

    def total_seconds(self) -> float:
        return sum(t.total_s for t in self.timings)

    def bottleneck(self) -> LayerTiming:
        return max(self.timings, key=lambda t: t.total_s)

    def macs_per_second(self) -> float:
        total_macs = sum(t.macs for t in self.timings) * self.repeats
        seconds = self.total_seconds()
        return total_macs / seconds if seconds > 0 else 0.0

    def render(self) -> str:
        total = max(self.total_seconds(), 1e-12)
        rows = []
        for t in self.timings:
            rows.append(
                [
                    t.name,
                    t.kind,
                    f"{t.forward_s * 1e3 / self.repeats:.2f}",
                    f"{t.backward_s * 1e3 / self.repeats:.2f}",
                    f"{t.total_s / total:.1%}",
                    f"{t.macs:,}" if t.macs else "-",
                ]
            )
        return render_table(
            ["layer", "type", "fwd ms", "bwd ms", "share", "MACs/img"],
            rows,
            title=(
                f"layer profile (batch={self.batch_size}, "
                f"repeats={self.repeats})"
            ),
        )


def _layer_macs(layer, input_shape: Tuple[int, ...]) -> int:
    """Multiply-accumulates per image for compute layers, else 0."""
    if isinstance(layer, Conv2D):  # incl. binary/xnor variants
        out_shape = layer.output_shape(input_shape)
        kh, kw = layer.kernel_size
        return (
            out_shape[0]
            * out_shape[1]
            * layer.out_channels
            * kh
            * kw
            * layer.in_channels
        )
    if isinstance(layer, Dense):
        return layer.in_features * layer.out_features
    return 0


class LayerProfiler:
    """Times every layer of a Sequential model.

    Timing wraps each layer's ``forward``/``backward`` calls directly
    (no monkey-patching survives beyond the profiled call), so the
    numbers include exactly the per-layer work and nothing else.
    """

    def __init__(self, model: Sequential) -> None:
        if model.input_shape is None:
            raise ValueError("profiling needs a model built with input_shape")
        self.model = model

    def profile(
        self,
        x: np.ndarray,
        repeats: int = 3,
        include_backward: bool = False,
        rng_grad: Optional[np.ndarray] = None,
    ) -> ProfileResult:
        """Run ``repeats`` timed passes over ``x``.

        With ``include_backward`` the model is put in training mode and
        a unit (or supplied) output gradient is back-propagated; layer
        parameter gradients are zeroed afterwards.
        """
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        model = self.model
        was_training = model.training
        model.train(include_backward)
        timings: Dict[str, LayerTiming] = {}
        shape = tuple(model.input_shape)
        for name in model.layer_names:
            layer = model[name]
            timings[name] = LayerTiming(
                name=name,
                kind=type(layer).__name__,
                macs=_layer_macs(layer, shape),
            )
            shape = tuple(layer.output_shape(shape))
        try:
            for _ in range(repeats):
                out = x
                for name in model.layer_names:
                    layer = model[name]
                    start = time.perf_counter()
                    out = layer.forward(out)
                    timings[name].forward_s += time.perf_counter() - start
                    timings[name].calls += 1
                if include_backward:
                    grad = (
                        rng_grad
                        if rng_grad is not None
                        else np.ones_like(out, dtype=np.float32)
                    )
                    for name in reversed(model.layer_names):
                        layer = model[name]
                        start = time.perf_counter()
                        grad = layer.backward(grad)
                        timings[name].backward_s += time.perf_counter() - start
            if include_backward:
                model.zero_grad()
        finally:
            model.train(was_training)
            model.clear_cache()
        return ProfileResult(
            timings=[timings[n] for n in model.layer_names],
            batch_size=int(x.shape[0]),
            repeats=repeats,
        )
