"""Weight initialisers.

Binary layers train from latent full-precision weights; Glorot-uniform
initialisation keeps early latent magnitudes inside the clipped-STE window
``[-1, 1]`` so every weight can still flip sign during training.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.utils.rng import RngLike, as_generator

__all__ = ["glorot_uniform", "he_normal", "uniform", "zeros", "ones", "get"]

Initializer = Callable[[Tuple[int, ...], np.random.Generator], np.ndarray]


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Fan-in/out for dense ``(in, out)`` and conv ``(K, K, C_in, C_out)``."""
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:
        receptive = shape[0] * shape[1]
        return receptive * shape[2], receptive * shape[3]
    raise ValueError(f"cannot infer fans for shape {shape}")


def glorot_uniform(shape: Tuple[int, ...], rng: RngLike = None) -> np.ndarray:
    """Glorot/Xavier uniform: U(-limit, limit), limit = sqrt(6/(fi+fo))."""
    fan_in, fan_out = _fan_in_out(shape)
    limit = float(np.sqrt(6.0 / (fan_in + fan_out)))
    return as_generator(rng).uniform(-limit, limit, size=shape).astype(np.float32)


def he_normal(shape: Tuple[int, ...], rng: RngLike = None) -> np.ndarray:
    """He normal: N(0, sqrt(2/fan_in)); the usual choice before ReLU."""
    fan_in, _ = _fan_in_out(shape)
    std = float(np.sqrt(2.0 / fan_in))
    return (as_generator(rng).standard_normal(shape) * std).astype(np.float32)


def uniform(
    shape: Tuple[int, ...], rng: RngLike = None, low: float = -0.1, high: float = 0.1
) -> np.ndarray:
    """Plain uniform initialisation in ``[low, high)``."""
    return as_generator(rng).uniform(low, high, size=shape).astype(np.float32)


def zeros(shape: Tuple[int, ...], rng: RngLike = None) -> np.ndarray:
    """All-zeros (biases, batch-norm beta)."""
    return np.zeros(shape, dtype=np.float32)


def ones(shape: Tuple[int, ...], rng: RngLike = None) -> np.ndarray:
    """All-ones (batch-norm gamma)."""
    return np.ones(shape, dtype=np.float32)


_REGISTRY = {
    "glorot_uniform": glorot_uniform,
    "he_normal": he_normal,
    "uniform": uniform,
    "zeros": zeros,
    "ones": ones,
}


def get(name_or_fn) -> Initializer:
    """Look up an initialiser by name, or pass a callable through."""
    if callable(name_or_fn):
        return name_or_fn
    try:
        return _REGISTRY[name_or_fn]
    except KeyError:
        raise ValueError(
            f"unknown initializer {name_or_fn!r}; "
            f"known: {sorted(_REGISTRY)}"
        ) from None
