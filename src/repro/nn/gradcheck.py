"""Finite-difference gradient checking for layers and losses.

Used by the test suite to certify every differentiable layer's backward
pass against central differences. Binary layers are *not* differentiable
in the analytic sense (the STE is a surrogate), so gradcheck applies to
the full-precision layers and to STE-free paths only.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.nn.module import Module

__all__ = ["numeric_gradient", "check_layer_input_grad", "check_layer_param_grads"]


def numeric_gradient(
    fn: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-3
) -> np.ndarray:
    """Central-difference gradient of scalar ``fn`` at ``x`` (float64)."""
    x = x.astype(np.float64)
    grad = np.zeros_like(x)
    flat = x.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = fn(x)
        flat[i] = orig - eps
        f_minus = fn(x)
        flat[i] = orig
        gflat[i] = (f_plus - f_minus) / (2.0 * eps)
    return grad


def _scalar_projection(shape: Tuple[int, ...], seed: int = 987654321) -> np.ndarray:
    """A fixed random projection turning a tensor output into a scalar.

    The seed is deliberately obscure: if it collided with the seed a test
    used to draw its input, the objective could become degenerate (e.g.
    for batch-norm, ``sum(x * BN(x))`` has an exactly-zero gradient).
    """
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape).astype(np.float64)


def check_layer_input_grad(
    layer: Module,
    x: np.ndarray,
    eps: float = 1e-3,
    atol: float = 5e-4,
    rtol: float = 1e-2,
) -> None:
    """Assert the layer's input gradient matches finite differences.

    The scalar objective is ``sum(P * layer(x))`` for a fixed random
    projection ``P``, whose analytic input gradient is
    ``layer.backward(P)``.
    """
    layer.train()
    out = layer.forward(x.astype(np.float32))
    proj = _scalar_projection(out.shape)

    def objective(x64: np.ndarray) -> float:
        return float((layer.forward(x64.astype(np.float32)) * proj).sum())

    layer.zero_grad()
    layer.forward(x.astype(np.float32))
    analytic = layer.backward(proj.astype(np.float32)).astype(np.float64)
    numeric = numeric_gradient(objective, x.astype(np.float64), eps)
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)


def check_layer_param_grads(
    layer: Module,
    x: np.ndarray,
    eps: float = 1e-3,
    atol: float = 5e-4,
    rtol: float = 1e-2,
) -> None:
    """Assert every parameter gradient matches finite differences."""
    layer.train()
    out = layer.forward(x.astype(np.float32))
    proj = _scalar_projection(out.shape)
    layer.zero_grad()
    layer.forward(x.astype(np.float32))
    layer.backward(proj.astype(np.float32))
    for name, p in layer.named_parameters():
        if p.grad is None:
            raise AssertionError(f"parameter {name} received no gradient")
        original = p.data.copy()

        def objective(theta: np.ndarray) -> float:
            p.data = theta.astype(np.float32)
            try:
                return float((layer.forward(x.astype(np.float32)) * proj).sum())
            finally:
                p.data = original

        numeric = numeric_gradient(objective, original.astype(np.float64), eps)
        np.testing.assert_allclose(
            p.grad.astype(np.float64),
            numeric,
            atol=atol,
            rtol=rtol,
            err_msg=f"parameter {name}",
        )
