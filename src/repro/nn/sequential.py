"""Sequential container with activation/gradient taps.

Grad-CAM (§III-C) needs, for a chosen layer, both the forward activation
and the gradient of a class logit w.r.t. that activation. A plain
sequential forward/backward pass naturally produces both; this container
exposes them through *taps* — layer names registered as observation
points — without modifying or retraining the model (exactly the property
the paper highlights for Grad-CAM).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.module import Module
from repro.utils.serialization import load_arrays, save_arrays

__all__ = ["Sequential"]


class Sequential(Module):
    """An ordered stack of named layers.

    Layers may be passed as modules (auto-named ``<class><index>``) or as
    ``(name, module)`` pairs. Names must be unique; they are the handles
    used for Grad-CAM taps and by the hardware compiler's reports.
    """

    def __init__(self, layers: Iterable = (), input_shape: Optional[Tuple[int, ...]] = None) -> None:
        super().__init__()
        self.layer_names: List[str] = []
        self.input_shape = tuple(input_shape) if input_shape is not None else None
        for entry in layers:
            if isinstance(entry, tuple):
                name, module = entry
                self.add(module, name=name)
            else:
                self.add(entry)

    # -- construction ----------------------------------------------------------
    def add(self, module: Module, name: Optional[str] = None) -> "Sequential":
        """Append a layer; returns self for chaining."""
        if not isinstance(module, Module):
            raise TypeError(f"expected a Module, got {type(module).__name__}")
        if name is None:
            name = f"{type(module).__name__.lower()}{len(self.layer_names)}"
        if name in self._modules:
            raise ValueError(f"duplicate layer name {name!r}")
        self.register_module(name, module)
        self.layer_names.append(name)
        module.train(self.training)
        return self

    @property
    def layers(self) -> List[Module]:
        """Layers in execution order."""
        return [self._modules[n] for n in self.layer_names]

    def __getitem__(self, name: str) -> Module:
        try:
            return self._modules[name]
        except KeyError:
            raise KeyError(
                f"no layer named {name!r}; available: {self.layer_names}"
            ) from None

    def index_of(self, name: str) -> int:
        """Execution index of the layer called ``name``."""
        try:
            return self.layer_names.index(name)
        except ValueError:
            raise KeyError(
                f"no layer named {name!r}; available: {self.layer_names}"
            ) from None

    # -- compute ------------------------------------------------------------------
    def forward(
        self, x: np.ndarray, taps: Sequence[str] = ()
    ) -> np.ndarray:
        """Run the stack; optionally record activations at ``taps``.

        Tap activations are stored on ``self.tap_activations`` keyed by
        layer name (the *output* of that layer).
        """
        self.tap_activations: Dict[str, np.ndarray] = {}
        unknown = set(taps) - set(self.layer_names)
        if unknown:
            raise KeyError(f"unknown tap layers: {sorted(unknown)}")
        out = x
        for name in self.layer_names:
            out = self._modules[name].forward(out)
            if name in taps:
                self.tap_activations[name] = out
        return out

    def backward(
        self, grad_output: np.ndarray, taps: Sequence[str] = ()
    ) -> np.ndarray:
        """Backpropagate; optionally record gradients at ``taps``.

        Tap gradients (``self.tap_gradients``) are gradients of the loss
        w.r.t. the *output* of the named layer — the quantity Grad-CAM
        needs.
        """
        self.tap_gradients: Dict[str, np.ndarray] = {}
        unknown = set(taps) - set(self.layer_names)
        if unknown:
            raise KeyError(f"unknown tap layers: {sorted(unknown)}")
        grad = grad_output
        for name in reversed(self.layer_names):
            if name in taps:
                self.tap_gradients[name] = grad
            grad = self._modules[name].backward(grad)
        return grad

    # -- introspection ---------------------------------------------------------------
    def iter_shape_inference(
        self, input_shape: Optional[Tuple[int, ...]] = None
    ):
        """Statically propagate shapes layer by layer, without a forward pass.

        Yields one ``(name, module, in_shape, out_shape, error)`` tuple
        per layer. ``out_shape`` is ``None`` when the layer's
        :meth:`~repro.nn.module.Module.output_shape` raised (``error``
        holds the exception) — propagation then continues with
        ``in_shape = None`` so downstream structural checks still run.
        This is the hook the static model-graph verifier
        (:mod:`repro.analysis.graph`) drives.
        """
        shape = input_shape if input_shape is not None else self.input_shape
        shape = tuple(shape) if shape is not None else None
        for name in self.layer_names:
            module = self._modules[name]
            out_shape = error = None
            if shape is not None:
                try:
                    out_shape = tuple(module.output_shape(shape))
                except Exception as exc:  # shape contract violation
                    error = exc
            yield name, module, shape, out_shape, error
            shape = out_shape

    def shapes(self) -> List[Tuple[str, Tuple[int, ...]]]:
        """Per-layer output shapes (excluding batch), from ``input_shape``.

        Raises the offending layer's error on an inconsistent stack; use
        :meth:`iter_shape_inference` to observe failures diagnostically.
        """
        if self.input_shape is None:
            raise ValueError("Sequential was built without input_shape")
        out = []
        for name, _, _, out_shape, error in self.iter_shape_inference():
            if error is not None:
                raise error
            out.append((name, out_shape))
        return out

    def summary(self) -> str:
        """Human-readable per-layer table: name, type, output shape, params."""
        lines = [f"{'layer':<16s}{'type':<16s}{'output shape':<20s}{'params':>10s}"]
        total = 0
        shape = self.input_shape
        for name in self.layer_names:
            mod = self._modules[name]
            if shape is not None:
                shape = mod.output_shape(shape)
                shape_str = str(tuple(shape))
            else:
                shape_str = "?"
            count = sum(p.data.size for p in mod.parameters())
            total += count
            lines.append(
                f"{name:<16s}{type(mod).__name__:<16s}{shape_str:<20s}{count:>10d}"
            )
        lines.append(f"total parameters: {total}")
        return "\n".join(lines)

    # -- persistence -----------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat mapping of parameter paths to arrays (copies).

        Includes batch-norm running statistics (suffix ``running_mean`` /
        ``running_var``) so a restored model is inference-ready.
        """
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for layer_name in self.layer_names:
            mod = self._modules[layer_name]
            if hasattr(mod, "running_mean"):
                state[f"{layer_name}.running_mean"] = mod.running_mean.copy()
                state[f"{layer_name}.running_var"] = mod.running_var.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters + running stats; shapes must match exactly."""
        params = dict(self.named_parameters())
        expected = set(params)
        for layer_name in self.layer_names:
            if hasattr(self._modules[layer_name], "running_mean"):
                expected.add(f"{layer_name}.running_mean")
                expected.add(f"{layer_name}.running_var")
        missing = expected - set(state)
        extra = set(state) - expected
        if missing or extra:
            raise ValueError(
                f"state dict mismatch; missing={sorted(missing)}, "
                f"unexpected={sorted(extra)}"
            )
        for name, p in params.items():
            value = np.asarray(state[name], dtype=np.float32)
            if value.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: checkpoint {value.shape}, "
                    f"model {p.data.shape}"
                )
            p.data = value.copy()
        for layer_name in self.layer_names:
            mod = self._modules[layer_name]
            if hasattr(mod, "running_mean"):
                mod.running_mean = np.asarray(
                    state[f"{layer_name}.running_mean"], dtype=np.float32
                ).copy()
                mod.running_var = np.asarray(
                    state[f"{layer_name}.running_var"], dtype=np.float32
                ).copy()

    def save(self, path, metadata: Optional[dict] = None):
        """Save a checkpoint (.npz) of all parameters and running stats."""
        meta = dict(metadata or {})
        meta.setdefault("layer_names", self.layer_names)
        if self.input_shape is not None:
            meta.setdefault("input_shape", list(self.input_shape))
        return save_arrays(path, self.state_dict(), meta)

    def load(self, path) -> dict:
        """Restore from :meth:`save`; returns the checkpoint metadata."""
        arrays, meta = load_arrays(path)
        self.load_state_dict(arrays)
        return meta
