"""``repro.nn`` — a from-scratch numpy deep-learning substrate.

Implements everything §III-A of the paper needs: binary convolutions and
dense layers with latent FP32 weights, sign activations with straight-
through estimators, batch normalisation (foldable to hardware thresholds),
max pooling, optimizers with latent-weight clipping, losses, LR schedules
and a training loop.
"""

from repro.nn.arena import BufferArena
from repro.nn.binary_ops import sign, ste_grad
from repro.nn.layers import (
    BatchNorm,
    BinaryConv2D,
    BinaryDense,
    Conv2D,
    Dense,
    Flatten,
    HardTanh,
    MaxPool2D,
    ReLU,
    SignActivation,
)
from repro.nn.losses import cross_entropy, squared_hinge
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam
from repro.nn.profiler import LayerProfiler, ProfileResult
from repro.nn.sequential import Sequential
from repro.nn.trainer import (
    EarlyStopping,
    History,
    Trainer,
    evaluate,
    evaluate_accuracy,
    predict_classes,
)

__all__ = [
    "Adam",
    "BatchNorm",
    "BinaryConv2D",
    "BinaryDense",
    "BufferArena",
    "Conv2D",
    "Dense",
    "EarlyStopping",
    "Flatten",
    "HardTanh",
    "LayerProfiler",
    "History",
    "MaxPool2D",
    "Module",
    "Parameter",
    "ProfileResult",
    "ReLU",
    "SGD",
    "Sequential",
    "SignActivation",
    "Trainer",
    "cross_entropy",
    "evaluate",
    "evaluate_accuracy",
    "predict_classes",
    "sign",
    "squared_hinge",
    "ste_grad",
]
