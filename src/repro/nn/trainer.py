"""Mini-batch training loop with metrics, early stopping and history.

Implements the training protocol of §IV-A: mini-batch optimisation of a
(binary) network, stopping early when learning saturates ("up to 300
epochs, unless learning saturates earlier").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.nn import losses as losses_mod
from repro.nn.arena import BufferArena
from repro.nn.optim import Optimizer
from repro.nn.schedules import Schedule, constant
from repro.nn.sequential import Sequential
from repro.telemetry.tracing import get_tracer
from repro.utils.rng import RngLike, as_generator

__all__ = [
    "History",
    "EarlyStopping",
    "Trainer",
    "evaluate",
    "evaluate_accuracy",
    "predict_classes",
]


@dataclass
class History:
    """Per-epoch training trace."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)
    learning_rate: List[float] = field(default_factory=list)
    epoch_seconds: List[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.train_loss)

    def best_val_accuracy(self) -> float:
        """Highest validation accuracy seen (0.0 if never validated)."""
        return max(self.val_accuracy, default=0.0)


@dataclass
class EarlyStopping:
    """Stop when the monitored value has not improved for ``patience`` epochs."""

    patience: int = 10
    min_delta: float = 1e-4
    _best: float = field(default=-np.inf, init=False)
    _stale: int = field(default=0, init=False)

    def update(self, value: float) -> bool:
        """Record ``value``; returns True when training should stop."""
        if value > self._best + self.min_delta:
            self._best = value
            self._stale = 0
            return False
        self._stale += 1
        return self._stale >= self.patience


def predict_classes(
    model: Sequential, x: np.ndarray, chunk_size: int = 256
) -> np.ndarray:
    """Argmax class prediction in inference mode, chunked to bound memory.

    ``chunk_size`` caps how many images enter one forward pass: the
    im2col expansion of a conv layer is ~K*K times the input, so an
    unbounded batch from e.g. the serving layer could exhaust memory.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    was_training = model.training
    model.eval()
    try:
        preds = []
        for start in range(0, len(x), chunk_size):
            logits = model.forward(x[start : start + chunk_size])
            preds.append(logits.argmax(axis=1))
        return np.concatenate(preds) if preds else np.empty(0, dtype=np.intp)
    finally:
        model.train(was_training)


def evaluate(
    model: Sequential,
    x: np.ndarray,
    y: np.ndarray,
    loss="cross_entropy",
    batch_size: int = 256,
) -> Tuple[float, float]:
    """Mean loss and top-1 accuracy in inference mode, in **one** sweep.

    The per-epoch validation of :meth:`Trainer.fit` needs both metrics;
    computing them from the same chunked forward passes halves validation
    cost versus calling :func:`evaluate_accuracy` and a loss pass
    separately. ``loss`` is a name or a ``(logits, targets) -> (loss,
    grad)`` callable, as for :class:`Trainer`.
    """
    if len(x) == 0:
        raise ValueError("cannot evaluate on an empty set")
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    loss_fn = losses_mod.get(loss)
    y = np.asarray(y)
    was_training = model.training
    model.eval()
    try:
        total_loss = 0.0
        correct = 0
        for start in range(0, len(x), batch_size):
            xb = x[start : start + batch_size]
            yb = y[start : start + batch_size]
            logits = model.forward(xb)
            batch_loss, _ = loss_fn(logits, yb)
            total_loss += batch_loss * len(xb)
            correct += int((logits.argmax(axis=1) == yb).sum())
        return total_loss / len(x), correct / len(x)
    finally:
        model.train(was_training)


def evaluate_accuracy(
    model: Sequential, x: np.ndarray, y: np.ndarray, batch_size: int = 256
) -> float:
    """Top-1 accuracy in inference mode (thin wrapper over :func:`evaluate`)."""
    return evaluate(model, x, y, batch_size=batch_size)[1]


class Trainer:
    """Drives optimisation of a :class:`Sequential` classifier.

    Parameters
    ----------
    model, optimizer:
        The network and the optimizer managing its parameters.
    loss:
        Name (``"cross_entropy"``/``"squared_hinge"``) or callable
        ``(logits, targets) -> (loss, grad)``.
    schedule:
        Learning-rate schedule (multiplier per epoch).
    use_arena:
        Route the training loop's recurring scratch (im2col columns,
        GEMM outputs, gradient buffers) through a persistent
        :class:`~repro.nn.arena.BufferArena` so steady-state steps stop
        allocating. Numerically bit-identical to the allocating path;
        ``False`` restores it (useful for A/B timing and as the
        reference in equivalence tests).
    """

    def __init__(
        self,
        model: Sequential,
        optimizer: Optimizer,
        loss="cross_entropy",
        schedule: Optional[Schedule] = None,
        use_arena: bool = True,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = losses_mod.get(loss)
        self.schedule = schedule or constant()
        self.base_lr = optimizer.lr
        self.arena: Optional[BufferArena] = BufferArena() if use_arena else None

    def train_epoch(
        self,
        x: np.ndarray,
        y: np.ndarray,
        batch_size: int,
        rng: np.random.Generator,
    ) -> Tuple[float, float]:
        """One shuffled pass over the training data; returns (loss, accuracy)."""
        n = len(x)
        if n == 0:
            raise ValueError("empty training set")
        order = rng.permutation(n)
        self.model.train()
        self.model.set_arena(self.arena)
        tracer = get_tracer()
        total_loss = 0.0
        total_correct = 0
        seen = 0
        step = 0
        for start in range(0, n, batch_size):
            idx = order[start : start + batch_size]
            if len(idx) < 2:
                continue  # batch-norm needs >1 sample; drop a trailing singleton
            xb, yb = x[idx], y[idx]
            with tracer.span(
                "train.step",
                kind="train_step",
                attributes={"step": step, "size": len(idx)},
            ):
                self.optimizer.zero_grad()
                logits = self.model.forward(xb)
                loss, grad = self.loss_fn(logits, yb)
                self.model.backward(grad)
                self.optimizer.step()
            step += 1
            total_loss += loss * len(idx)
            total_correct += int((logits.argmax(axis=1) == yb).sum())
            seen += len(idx)
        if seen == 0:
            raise ValueError(
                f"no usable batches: {n} samples with batch_size {batch_size}"
            )
        return total_loss / seen, total_correct / seen

    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        epochs: int,
        batch_size: int = 64,
        x_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
        rng: RngLike = None,
        early_stopping: Optional[EarlyStopping] = None,
        verbose: bool = False,
        callback: Optional[Callable[[int, History], None]] = None,
    ) -> History:
        """Train for up to ``epochs`` epochs; returns the :class:`History`.

        With ``early_stopping`` and a validation set, training halts when
        validation accuracy saturates (the paper's stopping criterion).
        """
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        if batch_size < 2:
            raise ValueError(f"batch_size must be >= 2, got {batch_size}")
        gen = as_generator(rng)
        history = History()
        has_val = x_val is not None and y_val is not None
        tracer = get_tracer()
        try:
            for epoch in range(epochs):
                start = time.perf_counter()
                self.optimizer.lr = self.base_lr * self.schedule(epoch)
                with tracer.span(
                    "train.epoch",
                    kind="train_epoch",
                    attributes={"epoch": epoch, "batch_size": batch_size},
                ):
                    loss, acc = self.train_epoch(
                        x_train, y_train, batch_size, gen
                    )
                    history.train_loss.append(loss)
                    history.train_accuracy.append(acc)
                    history.learning_rate.append(self.optimizer.lr)
                    if has_val:
                        # One fused sweep: loss and accuracy from the same
                        # chunked forward passes (used to be two sweeps).
                        val_loss, val_acc = self.evaluate(x_val, y_val)
                        history.val_accuracy.append(val_acc)
                        history.val_loss.append(val_loss)
                history.epoch_seconds.append(time.perf_counter() - start)
                if verbose:
                    msg = (
                        f"epoch {epoch + 1:3d}/{epochs}  "
                        f"loss {loss:.4f}  acc {acc:.4f}"
                    )
                    if has_val:
                        msg += (
                            f"  val_loss {history.val_loss[-1]:.4f}"
                            f"  val_acc {history.val_accuracy[-1]:.4f}"
                        )
                    print(msg)
                if callback is not None:
                    callback(epoch, history)
                if early_stopping is not None and has_val:
                    if early_stopping.update(history.val_accuracy[-1]):
                        break
        finally:
            # Leave the model clean: no scratch arena for eval/serving.
            self.model.set_arena(None)
        self.model.eval()
        return history

    def evaluate(
        self, x: np.ndarray, y: np.ndarray, batch_size: int = 256
    ) -> Tuple[float, float]:
        """Mean loss and top-1 accuracy in one inference-mode sweep."""
        return evaluate(self.model, x, y, loss=self.loss_fn, batch_size=batch_size)

    def _eval_loss(
        self, x: np.ndarray, y: np.ndarray, batch_size: int = 256
    ) -> float:
        """Mean loss over a dataset in inference mode (wrapper over
        :meth:`evaluate`)."""
        return self.evaluate(x, y, batch_size=batch_size)[0]
