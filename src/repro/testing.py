"""Helpers for tests and benchmarks.

Public so that downstream users can reuse them when extending the test
suite: a minimal deployable BNN and a batch-norm randomiser that makes an
untrained model's thresholds non-degenerate (useful whenever the
*functional* hardware path is under test and training would be noise).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    BatchNorm,
    BinaryConv2D,
    BinaryDense,
    Flatten,
    MaxPool2D,
    SignActivation,
)
from repro.nn.sequential import Sequential

__all__ = ["make_tiny_bnn", "randomize_bn_stats", "grid_images"]


def make_tiny_bnn(
    input_hw: int = 8, channels: int = 3, classes: int = 4, seed: int = 0
) -> Sequential:
    """A minimal model following the deployable layer grammar.

    Two binary conv blocks (the second pooled), one hidden binary FC
    block and a logits layer — every structural element the compiler
    handles, at toy scale.
    """
    flat = ((input_hw - 4) // 2) ** 2 * 8
    return Sequential(
        [
            ("conv1", BinaryConv2D(channels, 8, kernel_size=3, rng=seed)),
            ("bn_conv1", BatchNorm(8)),
            ("sign_conv1", SignActivation()),
            ("conv2", BinaryConv2D(8, 8, kernel_size=3, rng=seed + 1)),
            ("bn_conv2", BatchNorm(8)),
            ("sign_conv2", SignActivation()),
            ("pool1", MaxPool2D(2)),
            ("flatten", Flatten()),
            ("fc1", BinaryDense(flat, 16, rng=seed + 2)),
            ("bn_fc1", BatchNorm(16)),
            ("sign_fc1", SignActivation()),
            ("fc2", BinaryDense(16, classes, rng=seed + 3)),
        ],
        input_shape=(input_hw, input_hw, channels),
    )


def randomize_bn_stats(model: Sequential, seed: int = 1) -> None:
    """Give every batch-norm layer non-trivial 'trained' statistics.

    Fresh batch-norm layers have zero mean / unit variance running stats,
    which fold into degenerate thresholds; randomising them exercises the
    full threshold machinery without a training run.
    """
    gen = np.random.default_rng(seed)
    for layer in model.layers:
        if hasattr(layer, "running_mean"):
            n = layer.num_features
            layer.running_mean = gen.normal(0, 1.5, n).astype(np.float32)
            layer.running_var = gen.uniform(0.5, 3.0, n).astype(np.float32)
            if layer.affine:
                layer.gamma.data = gen.uniform(0.5, 1.5, n).astype(np.float32)
                layer.beta.data = gen.normal(0, 0.5, n).astype(np.float32)


def grid_images(n: int, hw: int = 32, seed: int = 0) -> np.ndarray:
    """Random images on the exact uint8 grid (deployment input domain)."""
    q = np.random.default_rng(seed).integers(0, 256, size=(n, hw, hw, 3))
    return (q / 255.0).astype(np.float32)
