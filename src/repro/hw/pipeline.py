"""Streaming dataflow pipeline timing model.

FINN generates one hardware stage per layer, all running concurrently;
when the pipeline is full the classification rate is set by the slowest
stage's initiation interval (II):

    throughput = f_clk / max_l II_l            (analytic)

"A single under-dimensioned MVTU could throttle the entire pipeline"
(§III-B) — that is exactly the ``max``. The paper reports *measured*
board throughput (~6400 FPS for n-CNV at 100 MHz); measured rates on
FINN systems sit below the analytic bound because of AXI/DMA overheads,
window-buffer stalls and FIFO back-pressure. We model this with a single
implementation-efficiency factor calibrated on the paper's n-CNV
operating point: analytic II gives 12,346 FPS, the paper measures ~6400,
giving η ≈ 0.52. The calibration is reported alongside every analytic
number rather than silently baked in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.hw.compiler import FinnAccelerator

__all__ = [
    "MEASURED_EFFICIENCY",
    "PipelineTiming",
    "analyze_pipeline",
    "simulate_stream",
]

#: Measured/analytic throughput ratio, fitted to the paper's n-CNV
#: ~6400 FPS against the analytic 12,346 FPS bound (see module docstring).
MEASURED_EFFICIENCY = 0.52


@dataclass
class PipelineTiming:
    """Timing summary of one accelerator at a given clock."""

    name: str
    clock_mhz: float
    stage_intervals: List[Tuple[str, int]]
    efficiency: float

    @property
    def bottleneck(self) -> Tuple[str, int]:
        """(stage name, II) of the slowest stage."""
        return max(self.stage_intervals, key=lambda item: item[1])

    @property
    def pipeline_interval(self) -> int:
        """Cycles between completed classifications when full."""
        return self.bottleneck[1]

    @property
    def latency_cycles(self) -> int:
        """First-classification latency: the pipeline must fill every stage."""
        return sum(ii for _, ii in self.stage_intervals)

    @property
    def fps_analytic(self) -> float:
        """Ideal streaming classification rate."""
        return self.clock_mhz * 1e6 / self.pipeline_interval

    @property
    def fps_calibrated(self) -> float:
        """Board-measured-rate model (analytic × efficiency)."""
        return self.fps_analytic * self.efficiency

    @property
    def latency_us(self) -> float:
        return self.latency_cycles / self.clock_mhz

    def batch_seconds(self, batch_size: int, calibrated: bool = True) -> float:
        """Modelled wall time to classify a batch of ``batch_size`` images.

        Streaming dataflow amortises the pipeline fill: the batch costs
        one fill (``latency_cycles``) plus one pipeline interval per
        additional image. This is the service-time model the serving
        layer's accelerator backend uses to translate a micro-batch into
        hardware-equivalent time; ``calibrated`` divides by the measured
        efficiency so the number matches board-like rates.
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        cycles = self.latency_cycles + (batch_size - 1) * self.pipeline_interval
        seconds = cycles / (self.clock_mhz * 1e6)
        return seconds / self.efficiency if calibrated else seconds

    def batch_fps(self, batch_size: int, calibrated: bool = True) -> float:
        """Effective FPS for micro-batches of ``batch_size`` (fill amortised)."""
        return batch_size / self.batch_seconds(batch_size, calibrated=calibrated)

    def report(self) -> str:
        """Per-stage II table plus the throughput summary."""
        lines = [f"pipeline {self.name} @ {self.clock_mhz:.0f} MHz"]
        for name, ii in self.stage_intervals:
            marker = " <-- bottleneck" if (name, ii) == self.bottleneck else ""
            lines.append(f"  {name:<12s} II = {ii:>8d} cycles{marker}")
        lines.append(
            f"  throughput: {self.fps_analytic:,.0f} FPS analytic, "
            f"{self.fps_calibrated:,.0f} FPS calibrated (eta={self.efficiency})"
        )
        lines.append(f"  first-image latency: {self.latency_us:,.1f} us")
        return "\n".join(lines)


def analyze_pipeline(
    accelerator: FinnAccelerator,
    clock_mhz: float = 100.0,
    efficiency: float = MEASURED_EFFICIENCY,
) -> PipelineTiming:
    """Build the timing summary for a compiled accelerator."""
    if clock_mhz <= 0:
        raise ValueError(f"clock must be positive, got {clock_mhz}")
    if not 0.0 < efficiency <= 1.0:
        raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
    return PipelineTiming(
        name=accelerator.name,
        clock_mhz=float(clock_mhz),
        stage_intervals=accelerator.stage_intervals(),
        efficiency=float(efficiency),
    )


def simulate_stream(
    accelerator: FinnAccelerator,
    num_images: int,
    clock_mhz: float = 100.0,
) -> Dict[str, np.ndarray]:
    """Cycle-level occupancy trace of ``num_images`` flowing through.

    Models each stage as a server with service time = its II; image ``i``
    enters stage ``l`` when both the previous stage has emitted it and the
    stage has finished image ``i-1`` (store-and-forward streaming — a
    conservative but faithful view of Fig. 1's layer-pipelined dataflow).

    Returns ``start`` and ``finish`` matrices of shape
    ``(num_images, num_stages)`` in cycles, plus the effective FPS over
    the run (which converges to the analytic rate as the stream grows).
    """
    if num_images <= 0:
        raise ValueError(f"num_images must be positive, got {num_images}")
    intervals = [ii for _, ii in accelerator.stage_intervals()]
    n_stages = len(intervals)
    start = np.zeros((num_images, n_stages), dtype=np.int64)
    finish = np.zeros((num_images, n_stages), dtype=np.int64)
    # Per stage the recurrence finish[i] = max(prev[i], finish[i-1]) + II
    # telescopes into a prefix-max: with g[i] = finish[i] - (i+1)*II it
    # becomes g[i] = max(prev[i] - i*II, g[i-1]), i.e. a running maximum
    # over the image axis — one O(n) scan per stage instead of a Python
    # loop over every (image, stage) cell.
    steps = np.arange(num_images, dtype=np.int64)
    prev = np.zeros(num_images, dtype=np.int64)
    for l, interval in enumerate(intervals):
        scan = np.maximum.accumulate(prev - steps * interval)
        stage_finish = scan + (steps + 1) * interval
        finish[:, l] = stage_finish
        start[:, l] = stage_finish - interval
        prev = stage_finish
    total_cycles = int(finish[-1, -1])
    fps = num_images / (total_cycles / (clock_mhz * 1e6))
    return {
        "start": start,
        "finish": finish,
        "total_cycles": np.int64(total_cycles),
        "fps": np.float64(fps),
    }
