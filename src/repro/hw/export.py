"""Deployment-package export for a compiled accelerator.

A real FINN flow ends with weight/threshold memory initialisation files
consumed by the HLS build. This module serialises everything a hardware
build (or another simulator) needs to re-instantiate a compiled
:class:`~repro.hw.compiler.FinnAccelerator` **without** the Python
model: per-stage packed weight words, integer thresholds, folding and
geometry metadata — and can load such a package back into a functional
accelerator, verified bit-exact by the test suite.

Package layout (one ``.npz``):

* ``<i>.weights`` — packed ``uint64`` words (binary stages) or ``int32``
  matrices (the 8-bit first layer);
* ``<i>.thresholds`` / ``<i>.flipped`` — threshold spec (absent for the
  logits stage);
* JSON metadata with stage geometry, folding and datapath parameters.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.hw.bitpack import PackedBits
from repro.hw.compiler import FinnAccelerator, HardwareStage
from repro.hw.maxpool_unit import MaxPoolUnit, MaxPoolUnitConfig
from repro.hw.mvtu import MVTU, MVTUConfig
from repro.hw.swu import SlidingWindowUnit, SWUConfig
from repro.hw.thresholding import ThresholdSpec
from repro.utils.serialization import load_arrays, save_arrays

__all__ = ["export_accelerator", "load_accelerator"]

PACKAGE_KIND = "binarycop-accelerator"
PACKAGE_VERSION = 1


def export_accelerator(accelerator: FinnAccelerator, path) -> Path:
    """Serialise a compiled accelerator to a deployment package."""
    arrays: Dict[str, np.ndarray] = {}
    stages_meta: List[dict] = []
    for i, stage in enumerate(accelerator.stages):
        cfg = stage.mvtu.config
        if cfg.input_bits == 1:
            arrays[f"{i}.weights"] = stage.mvtu._packed_weights.words
        else:
            arrays[f"{i}.weights"] = stage.mvtu._int_weights
        spec = stage.mvtu.thresholds
        if spec is not None:
            arrays[f"{i}.thresholds"] = spec.thresholds
            arrays[f"{i}.flipped"] = spec.flipped
        meta = {
            "name": stage.name,
            "kind": stage.kind,
            "rows": cfg.rows,
            "cols": cfg.cols,
            "pe": cfg.pe,
            "simd": cfg.simd,
            "input_bits": cfg.input_bits,
            "has_threshold": cfg.has_threshold,
            "vectors_per_image": stage.vectors_per_image,
            "in_shape": list(stage.in_shape),
            "out_shape": list(stage.out_shape),
        }
        if spec is not None:
            meta["acc_min"] = spec.acc_min
            meta["acc_max"] = spec.acc_max
        if stage.swu is not None:
            meta["swu"] = {
                "in_hw": list(stage.swu.config.in_hw),
                "channels": stage.swu.config.channels,
                "kernel": list(stage.swu.config.kernel),
            }
        if stage.pool is not None:
            meta["pool"] = {
                "in_hw": list(stage.pool.config.in_hw),
                "channels": stage.pool.config.channels,
                "pool": list(stage.pool.config.pool),
            }
        stages_meta.append(meta)
    metadata = {
        "kind": PACKAGE_KIND,
        "package_version": PACKAGE_VERSION,
        "name": accelerator.name,
        "input_shape": list(accelerator.input_shape),
        "num_classes": accelerator.num_classes,
        "stages": stages_meta,
    }
    return save_arrays(path, arrays, metadata)


def load_accelerator(path) -> FinnAccelerator:
    """Re-instantiate an accelerator from a deployment package."""
    arrays, meta = load_arrays(path)
    if meta.get("kind") != PACKAGE_KIND:
        raise ValueError(
            f"{path} is not an accelerator package (kind={meta.get('kind')!r})"
        )
    if meta.get("package_version", 0) > PACKAGE_VERSION:
        raise ValueError(
            f"package version {meta['package_version']} newer than "
            f"supported {PACKAGE_VERSION}"
        )
    stages: List[HardwareStage] = []
    for i, sm in enumerate(meta["stages"]):
        cfg = MVTUConfig(
            name=sm["name"],
            rows=sm["rows"],
            cols=sm["cols"],
            pe=sm["pe"],
            simd=sm["simd"],
            input_bits=sm["input_bits"],
            has_threshold=sm["has_threshold"],
        )
        spec = None
        if sm["has_threshold"]:
            spec = ThresholdSpec(
                thresholds=np.asarray(arrays[f"{i}.thresholds"], dtype=np.int64),
                flipped=np.asarray(arrays[f"{i}.flipped"], dtype=bool),
                acc_min=sm["acc_min"],
                acc_max=sm["acc_max"],
            )
        # Rebuild the MVTU without re-validating weights through the
        # bipolar constructor path: reconstruct from stored arrays.
        if cfg.input_bits == 1:
            from repro.hw.bitpack import unpack_bits

            words = np.asarray(arrays[f"{i}.weights"], dtype=np.uint64)
            weights = unpack_bits(PackedBits(words=words, nbits=cfg.cols))
        else:
            weights = np.asarray(arrays[f"{i}.weights"], dtype=np.int32)
        mvtu = MVTU(cfg, weights, spec)
        swu = None
        if "swu" in sm:
            swu = SlidingWindowUnit(
                SWUConfig(
                    name=f"{sm['name']}.swu",
                    in_hw=tuple(sm["swu"]["in_hw"]),
                    channels=sm["swu"]["channels"],
                    kernel=tuple(sm["swu"]["kernel"]),
                    simd=cfg.simd,
                )
            )
        pool = None
        if "pool" in sm:
            pool = MaxPoolUnit(
                MaxPoolUnitConfig(
                    name=f"{sm['name']}.pool",
                    in_hw=tuple(sm["pool"]["in_hw"]),
                    channels=sm["pool"]["channels"],
                    pool=tuple(sm["pool"]["pool"]),
                )
            )
        stages.append(
            HardwareStage(
                name=sm["name"],
                kind=sm["kind"],
                mvtu=mvtu,
                vectors_per_image=sm["vectors_per_image"],
                swu=swu,
                pool=pool,
                in_shape=tuple(sm["in_shape"]),
                out_shape=tuple(sm["out_shape"]),
            )
        )
    return FinnAccelerator(
        name=meta["name"],
        stages=stages,
        input_shape=tuple(meta["input_shape"]),
        num_classes=meta["num_classes"],
    )
