"""Batch-norm → integer-threshold folding (§III-A).

After a binary matrix operation the accumulator passes through batch-norm
and ``sign``. Since the composition only needs the *sign* of an affine
function of an integer accumulator, it collapses into a per-channel
integer comparison: "based on the batch-norm statistics collected at
training time, a threshold point τ is defined" [7]. This module computes
**exact** integer thresholds: for each channel we solve for the smallest
accumulator value satisfying the predicate and then verify/adjust against
the original float64 predicate, so the hardware datapath is bit-exact
with (quantised-input) software inference by construction.

Two accumulator domains are supported:

* ``popcount`` — binary layers; accumulator ``p ∈ [0, F]``, bipolar value
  ``2p − F``;
* ``integer`` — the 8-bit first layer; accumulator is the raw integer MAC
  with inputs scaled by ``input_scale`` (e.g. 255 for uint8 pixels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.hw.bitpack import pack_bits

__all__ = [
    "ThresholdSpec",
    "fold_batchnorm_sign",
    "fold_popcount_domain",
    "apply_thresholds",
    "apply_thresholds_packed",
    "quantize_spec",
]


@dataclass(frozen=True)
class ThresholdSpec:
    """Per-channel integer thresholds for a matrix-vector-threshold unit.

    For channel ``c`` the binarised output bit is::

        bit = (acc >= threshold[c])  if not flipped[c]
        bit = (acc <= threshold[c])  if flipped[c]

    where ``acc`` is the integer accumulator (popcount or raw MAC). A
    channel whose batch-norm scale is exactly zero is constant; it is
    encoded with a threshold beyond the accumulator range.
    """

    thresholds: np.ndarray  # (C,) int64
    flipped: np.ndarray  # (C,) bool
    acc_min: int
    acc_max: int

    def __post_init__(self) -> None:
        if self.thresholds.shape != self.flipped.shape:
            raise ValueError("thresholds and flipped must have the same shape")
        if self.acc_min > self.acc_max:
            raise ValueError(
                f"empty accumulator range [{self.acc_min}, {self.acc_max}]"
            )

    @property
    def num_channels(self) -> int:
        return int(self.thresholds.shape[0])

    def storage_bits(self) -> int:
        """Bits needed to store the thresholds in hardware."""
        span = max(abs(self.acc_min), abs(self.acc_max)) + 1
        width = int(np.ceil(np.log2(span + 1))) + 1  # sign bit
        return self.num_channels * (width + 1)  # +1 for the flip flag


def _predicate(
    acc: np.ndarray, scale: np.ndarray, shift: np.ndarray, acc_to_real: float
) -> np.ndarray:
    """The exact float64 predicate sign(BN(x)) == +1, i.e. BN(x) >= 0."""
    real = acc.astype(np.float64) * acc_to_real
    return scale * real + shift >= 0.0


def fold_batchnorm_sign(
    scale: np.ndarray,
    shift: np.ndarray,
    acc_min: int,
    acc_max: int,
    acc_to_real: float = 1.0,
) -> ThresholdSpec:
    """Fold ``sign(scale * (acc * acc_to_real) + shift)`` into thresholds.

    Parameters
    ----------
    scale, shift:
        The batch-norm inference affine (from
        :meth:`repro.nn.layers.batchnorm.BatchNorm.fused_scale_shift`).
    acc_min, acc_max:
        Inclusive integer accumulator range (``[0, F]`` for popcount,
        ``[-S*F, S*F]`` for the scaled first layer).
    acc_to_real:
        Conversion factor from the integer accumulator to the real-valued
        pre-batch-norm activation (``2`` & offset handled by the caller
        for popcount domains via :func:`fold_popcount_domain`).

    The solved thresholds are *verified*: for every channel we evaluate
    the float64 predicate at ``threshold`` and ``threshold - 1`` and nudge
    until the boundary is exact, so no float-rounding edge case can leak
    into the datapath.
    """
    scale = np.asarray(scale, dtype=np.float64)
    shift = np.asarray(shift, dtype=np.float64)
    if scale.shape != shift.shape or scale.ndim != 1:
        raise ValueError(
            f"scale/shift must be matching 1-D arrays, got {scale.shape}, {shift.shape}"
        )
    n = scale.shape[0]
    thresholds = np.empty(n, dtype=np.int64)
    flipped = scale < 0.0

    # Closed-form candidate: acc >= -shift / (scale * acc_to_real).
    with np.errstate(divide="ignore", invalid="ignore"):
        boundary = -shift / (scale * acc_to_real)

    for c in range(n):
        if scale[c] == 0.0:
            # Constant channel: +1 iff shift >= 0.
            if shift[c] >= 0.0:
                thresholds[c] = acc_min  # acc >= acc_min is always true
                flipped[c] = False
            else:
                thresholds[c] = acc_max + 1  # never true
                flipped[c] = False
            continue
        t = int(np.ceil(boundary[c])) if not flipped[c] else int(np.floor(boundary[c]))
        t = int(np.clip(t, acc_min - 1, acc_max + 1))
        # Exactness adjustment against the float64 predicate. The
        # candidate is within 1 of correct; walk until the boundary holds:
        # predicate(t) true and predicate(t -/+ 1) false.
        step = 1 if not flipped[c] else -1
        guard = 0
        while t in range(acc_min, acc_max + 1) and not _predicate(
            np.asarray([t]), scale[c], shift[c], acc_to_real
        )[0]:
            t += step
            guard += 1
            if guard > 4:
                raise RuntimeError(
                    f"threshold adjustment diverged for channel {c}"
                )
        while (t - step) in range(acc_min, acc_max + 1) and _predicate(
            np.asarray([t - step]), scale[c], shift[c], acc_to_real
        )[0]:
            t -= step
            guard += 1
            if guard > 8:
                raise RuntimeError(
                    f"threshold adjustment diverged for channel {c}"
                )
        thresholds[c] = t
    return ThresholdSpec(
        thresholds=thresholds,
        flipped=np.asarray(flipped, dtype=bool),
        acc_min=int(acc_min),
        acc_max=int(acc_max),
    )


def fold_popcount_domain(
    scale: np.ndarray, shift: np.ndarray, fan_in: int
) -> ThresholdSpec:
    """Fold BN+sign over a *popcount* accumulator ``p ∈ [0, F]``.

    The bipolar pre-activation is ``2p − F``; we absorb the affine
    ``2p − F`` into the batch-norm affine so the generic folder can work
    directly in the popcount domain: ``scale·(2p−F)+shift =
    (2·scale)·p + (shift − scale·F)``.
    """
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    scale = np.asarray(scale, dtype=np.float64)
    shift = np.asarray(shift, dtype=np.float64)
    eff_scale = 2.0 * scale
    eff_shift = shift - scale * float(fan_in)
    return fold_batchnorm_sign(eff_scale, eff_shift, acc_min=0, acc_max=fan_in)


def quantize_spec(spec: ThresholdSpec, bits: int) -> ThresholdSpec:
    """Re-quantise thresholds to a ``bits``-wide signed storage format.

    The exact thresholds need ``ceil(log2(acc_range))`` bits; a designer
    can trade accuracy for threshold-memory width by snapping thresholds
    to a coarser grid (uniform over the accumulator range, round to
    nearest). Used by the threshold-width ablation to show how many bits
    the comparison stage actually needs.
    """
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    lo = float(spec.acc_min - 1)
    hi = float(spec.acc_max + 1)
    levels = 2**bits
    if levels >= (hi - lo) + 1:
        return spec  # full precision already representable
    step = (hi - lo) / (levels - 1)
    snapped = np.rint((spec.thresholds - lo) / step) * step + lo
    snapped = np.clip(np.rint(snapped), spec.acc_min - 1, spec.acc_max + 1)
    return ThresholdSpec(
        thresholds=snapped.astype(np.int64),
        flipped=spec.flipped.copy(),
        acc_min=spec.acc_min,
        acc_max=spec.acc_max,
    )


def apply_thresholds(acc: np.ndarray, spec: ThresholdSpec) -> np.ndarray:
    """Vectorised threshold comparison; returns boolean output bits.

    ``acc`` is ``(..., C)`` of integer accumulators; the comparison runs
    per channel along the last axis (the hardware does this in the PE's
    threshold stage, one compare per output).
    """
    acc = np.asarray(acc)
    if acc.shape[-1] != spec.num_channels:
        raise ValueError(
            f"accumulator channels {acc.shape[-1]} != spec {spec.num_channels}"
        )
    ge = acc >= spec.thresholds
    le = acc <= spec.thresholds
    return np.where(spec.flipped, le, ge)


def apply_thresholds_packed(acc: np.ndarray, spec: ThresholdSpec):
    """:func:`apply_thresholds` emitting bit-packed output.

    Returns a :class:`~repro.hw.bitpack.PackedBits` whose logical tensor
    equals the boolean result of :func:`apply_thresholds` — the form the
    packed-domain datapath hands straight to the next stage without ever
    materialising a per-channel boolean feature map.
    """
    return pack_bits(apply_thresholds(acc, spec))
