"""BNN → FINN-style accelerator compiler.

Takes a trained :class:`repro.nn.Sequential` following the paper's layer
grammar and emits a :class:`FinnAccelerator`: a pipeline of hardware
stages (SWU + MVTU + optional OR-pool per conv layer; MVTU per FC layer)
whose datapath is **integer-only** — XNOR/popcount accumulation and
folded batch-norm thresholds, exactly as §III-A/B describe.

Layer grammar recognised (what :mod:`repro.core.architectures` emits)::

    [Conv]   (Binary)Conv2D -> BatchNorm -> SignActivation [-> MaxPool2D]
    [Flat]   Flatten
    [FC]     BinaryDense -> BatchNorm -> SignActivation
    [Logit]  BinaryDense                      (final layer, no threshold)

The first conv consumes 8-bit pixels (FINN's fixed-point input layer);
everything downstream is 1-bit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.hw.bitpack import WORD_BITS, PackedBits, pack_bits, unpack_bits
from repro.hw.maxpool_unit import MaxPoolUnit, MaxPoolUnitConfig
from repro.hw.mvtu import MVTU, MVTUConfig
from repro.hw.swu import SlidingWindowUnit, SWUConfig
from repro.hw.thresholding import fold_batchnorm_sign, fold_popcount_domain
from repro.telemetry.tracing import get_tracer
from repro.nn.binary_ops import sign
from repro.nn.layers import (
    BatchNorm,
    BinaryConv2D,
    BinaryDense,
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    SignActivation,
)
from repro.nn.layers.xnor import XnorConv2D, XnorDense
from repro.nn.sequential import Sequential

__all__ = [
    "HardwareStage",
    "FinnAccelerator",
    "FoldingConfig",
    "MVTUGeometry",
    "compile_model",
    "folding_violations",
    "mvtu_geometry",
]

#: Pixel quantisation scale for the 8-bit input layer.
INPUT_SCALE = 255


class MVTUGeometry(NamedTuple):
    """Static matrix geometry of one MVTU: the facts folding must respect."""

    name: str
    kind: str  # "conv" or "fc"
    rows: int  # output neurons (channels / features)
    cols: int  # fan-in (K*K*C_in for conv, in_features for fc)


def mvtu_geometry(model: Sequential) -> List[MVTUGeometry]:
    """The (rows, cols) geometry of every MVTU ``model`` would compile to.

    Purely static — derived from layer declarations and shape inference,
    no forward pass. Shared by :func:`compile_model` (early folding
    validation) and the model-graph verifier
    (:mod:`repro.analysis.graph`), so folding legality has exactly one
    definition.
    """
    geoms: List[MVTUGeometry] = []
    for name, layer, in_shape, _, _ in model.iter_shape_inference():
        if isinstance(layer, Conv2D):
            kh, kw = layer.kernel_size
            c_in = in_shape[2] if in_shape is not None and len(in_shape) == 3 \
                else layer.in_channels
            geoms.append(
                MVTUGeometry(name, "conv", layer.out_channels, kh * kw * c_in)
            )
        elif isinstance(layer, Dense):
            geoms.append(
                MVTUGeometry(name, "fc", layer.out_features, layer.in_features)
            )
    return geoms


def folding_violations(
    pe: Tuple[int, ...],
    simd: Tuple[int, ...],
    geometry: Sequence[MVTUGeometry],
) -> List[Tuple[str, str, str]]:
    """Every way ``(pe, simd)`` fails to legally fold ``geometry``.

    Returns ``(mvtu_name, check, message)`` triples, where ``check`` is
    ``"arity"``, ``"pe"`` or ``"simd"``. Empty list = legal folding.
    """
    if len(pe) != len(geometry):
        return [(
            "",
            "arity",
            f"folding has {len(pe)} entries but the model has "
            f"{len(geometry)} MVTU layers",
        )]
    out: List[Tuple[str, str, str]] = []
    for geom, p, s in zip(geometry, pe, simd):
        if geom.rows % p != 0:
            out.append((
                geom.name, "pe",
                f"{geom.name}: PE={p} does not divide rows={geom.rows}",
            ))
        if geom.cols % s != 0:
            out.append((
                geom.name, "simd",
                f"{geom.name}: SIMD={s} does not divide cols={geom.cols}",
            ))
    return out


@dataclass(frozen=True)
class FoldingConfig:
    """PE/SIMD dimensioning for every MVTU, in pipeline order (Table I).

    A bare config only knows the vectors; binding it to a model's
    :func:`mvtu_geometry` (``folding.for_model(model)``) additionally
    validates divisibility at construction, so an illegal folding fails
    immediately with a named-MVTU error instead of deep inside
    :func:`compile_model`. ``geometry`` does not participate in
    equality: a bound and an unbound config with the same vectors
    compare equal.
    """

    pe: Tuple[int, ...]
    simd: Tuple[int, ...]
    geometry: Optional[Tuple[MVTUGeometry, ...]] = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if len(self.pe) != len(self.simd):
            raise ValueError(
                f"PE ({len(self.pe)}) and SIMD ({len(self.simd)}) vectors "
                f"must have equal length"
            )
        if any(p <= 0 for p in self.pe) or any(s <= 0 for s in self.simd):
            raise ValueError("PE and SIMD entries must be positive")
        if self.geometry is not None:
            object.__setattr__(
                self,
                "geometry",
                tuple(MVTUGeometry(*g) for g in self.geometry),
            )
            problems = folding_violations(self.pe, self.simd, self.geometry)
            if problems:
                raise ValueError("; ".join(msg for _, _, msg in problems))

    def bound(self, geometry: Sequence[MVTUGeometry]) -> "FoldingConfig":
        """A copy bound to (and validated against) ``geometry``."""
        return FoldingConfig(self.pe, self.simd, geometry=tuple(geometry))

    def for_model(self, model: Sequential) -> "FoldingConfig":
        """A copy validated against ``model``'s MVTU geometry."""
        return self.bound(mvtu_geometry(model))

    def __len__(self) -> int:
        return len(self.pe)


@dataclass
class HardwareStage:
    """One pipeline stage: an MVTU plus its helpers."""

    name: str
    kind: str  # "conv" or "fc"
    mvtu: MVTU
    vectors_per_image: int
    swu: Optional[SlidingWindowUnit] = None
    pool: Optional[MaxPoolUnit] = None
    in_shape: Tuple[int, ...] = ()
    out_shape: Tuple[int, ...] = ()

    def initiation_interval(self) -> int:
        """Cycles this stage needs per image (slowest of its units)."""
        cycles = [self.mvtu.cycles_per_image(self.vectors_per_image)]
        if self.swu is not None:
            cycles.append(self.swu.cycles_per_image())
        if self.pool is not None:
            cycles.append(self.pool.cycles_per_image())
        return max(cycles)

    def unit_cycles(self) -> Dict[str, int]:
        """Per-unit cycle breakdown (for the pipeline report)."""
        out = {"mvtu": self.mvtu.cycles_per_image(self.vectors_per_image)}
        if self.swu is not None:
            out["swu"] = self.swu.cycles_per_image()
        if self.pool is not None:
            out["pool"] = self.pool.cycles_per_image()
        return out


class FinnAccelerator:
    """A compiled streaming accelerator.

    ``execute`` runs the full integer datapath; timing and resource
    queries delegate to :mod:`repro.hw.pipeline` and
    :mod:`repro.hw.resources`.
    """

    def __init__(
        self,
        name: str,
        stages: List[HardwareStage],
        input_shape: Tuple[int, int, int],
        num_classes: int,
    ) -> None:
        if not stages:
            raise ValueError("accelerator needs at least one stage")
        self.name = name
        self.stages = stages
        self.input_shape = tuple(input_shape)
        self.num_classes = int(num_classes)
        self._plan_cache = None
        self._process_pool = None
        self._engines = {}

    def __getstate__(self):
        # Plan caches hold a lock and arena-bound buffers, process pools
        # and engines hold live OS resources — all derived state, rebuilt
        # lazily wherever the accelerator lands (a spawn-started pool
        # worker, a deepcopy for fault injection).
        state = self.__dict__.copy()
        state["_plan_cache"] = None
        state["_process_pool"] = None
        state["_engines"] = {}
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._plan_cache = None
        self._process_pool = None
        self._engines = {}

    @property
    def plans(self):
        """The accelerator's :class:`~repro.hw.plan.PlanCache` (lazy).

        Compiled execution plans are keyed by batch geometry, folding and
        thread, so repeated fixed-shape batches (``predict``, the serving
        backends) run the precompiled allocation-free datapath.
        """
        if self._plan_cache is None:
            from repro.hw.plan import PlanCache

            self._plan_cache = PlanCache(self)
        return self._plan_cache

    def process_pool(self, num_workers=None, **kwargs):
        """The accelerator's :class:`~repro.parallel.ProcessPool` (lazy).

        Re-created when ``num_workers`` changes; closed via
        :meth:`close_pool` (or left to the daemonic workers' exit with
        the parent). Extra ``kwargs`` are only honoured at creation.
        """
        from repro.parallel import ProcessPool

        pool = self._process_pool
        if pool is not None and (
            not pool.healthy()
            or (num_workers is not None and pool.num_workers != num_workers)
        ):
            pool.close()
            pool = self._process_pool = None
        if pool is None:
            pool = ProcessPool(self, num_workers=num_workers, **kwargs)
            self._process_pool = pool
        return pool

    def close_pool(self) -> None:
        """Shut down the lazy process pool and any pooled engines."""
        if self._process_pool is not None:
            self._process_pool.close()
            self._process_pool = None
        for engine in list(self._engines.values()):
            close = getattr(engine, "close", None)
            if close is not None:
                close()
        self._engines.clear()

    # -- runtime dispatch ----------------------------------------------------
    def engine_for(self, execution=None):
        """The cached :class:`~repro.runtime.engines.Engine` for a config.

        One engine instance per distinct :class:`ExecutionConfig`, built
        through the :mod:`repro.runtime.registry` resolution rules and
        kept for the accelerator's lifetime so plan caches, arenas and
        worker pools persist across calls.
        """
        from repro.runtime import ExecutionConfig, create_engine
        from repro.runtime.registry import resolve_engine_name

        if execution is None:
            execution = ExecutionConfig()
        engine = self._engines.get(execution)
        if engine is None:
            if resolve_engine_name(execution, self) == "process":
                # One live pool per accelerator: a process engine with a
                # different topology replaces (and closes) the old one,
                # mirroring the historical lazy-pool semantics.
                for key, old in list(self._engines.items()):
                    if getattr(old, "name", "") == "process":
                        old.close()
                        del self._engines[key]
            engine = self._engines[execution] = create_engine(self, execution)
        return engine

    def run(
        self,
        images: np.ndarray,
        execution=None,
        *,
        return_bits: bool = False,
        stage_seconds: Optional[list] = None,
    ):
        """Integer logits via the engine resolved for ``execution``.

        The first-class entry point of the runtime layer: ``execution``
        is an :class:`~repro.runtime.ExecutionConfig` (default: planned
        single-process inference). ``execute``/``predict`` remain as
        compatibility wrappers over this.
        """
        return self.engine_for(execution).run(
            images, return_bits=return_bits, stage_seconds=stage_seconds
        )

    # -- functional ---------------------------------------------------------
    @staticmethod
    def quantize_input(images: np.ndarray) -> np.ndarray:
        """Quantise [0, 1] float images to the 8-bit integer input domain."""
        images = np.asarray(images)
        if images.size == 0:
            # An empty batch has no range to validate (min/max would
            # raise); it quantises to an empty integer batch.
            return images.astype(np.int64)
        if np.issubdtype(images.dtype, np.integer):
            if images.min() < 0 or images.max() > INPUT_SCALE:
                raise ValueError(
                    f"integer input must be in [0, {INPUT_SCALE}]"
                )
            return images.astype(np.int64)
        if images.min() < -1e-6 or images.max() > 1.0 + 1e-6:
            raise ValueError("float input must be in [0, 1]")
        return np.rint(images.astype(np.float64) * INPUT_SCALE).astype(np.int64)

    def execute(
        self,
        images: np.ndarray,
        return_bits: bool = False,
        chunk_size: Optional[int] = None,
        num_workers: Optional[int] = None,
        use_packed: Optional[bool] = None,
        stage_seconds: Optional[list] = None,
        use_plan: Optional[bool] = None,
        execution=None,
    ):
        """Run the integer datapath; returns integer logits ``(N, classes)``.

        Compatibility wrapper over :meth:`run` — the kwargs map onto an
        :class:`~repro.runtime.ExecutionConfig` and dispatch through the
        :mod:`repro.runtime` registry. Defaults keep the historical
        semantics: the interpreted reference datapath, optionally
        chunked (``chunk_size`` bounds the SWU's ~K*K window memory) and
        thread-parallel (``num_workers``; numpy releases the GIL in the
        pack/XNOR/popcount kernels). ``use_packed=False`` forces the
        boolean reference stages. With ``return_bits`` additionally
        returns the per-stage binary activation maps; chunking is
        incompatible with it (the traces would need re-stitching).

        ``use_plan`` is **deprecated** — pass
        ``execution=ExecutionConfig(...)`` (or call :meth:`run`) to pick
        the planned engines instead.
        """
        from repro.runtime import ExecutionConfig, deprecated_kwargs_config

        if num_workers is not None and num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if use_plan is not None:
            execution = deprecated_kwargs_config(
                "FinnAccelerator.execute",
                execution,
                use_plan=use_plan,
                chunk_size=chunk_size,
                workers=num_workers,
                packed_datapath=use_packed,
            )
        else:
            execution = (
                execution if execution is not None
                else ExecutionConfig(use_plan=False)
            ).merged(
                chunk_size=chunk_size,
                workers=num_workers,
                packed_datapath=use_packed,
            )
        return self.run(
            images,
            execution,
            return_bits=return_bits,
            stage_seconds=stage_seconds,
        )

    def _run_interpreted(
        self,
        images: np.ndarray,
        return_bits: bool = False,
        use_packed: Optional[bool] = None,
        stage_seconds: Optional[list] = None,
    ):
        """The stage-by-stage reference datapath, one unchunked batch.

        This is the golden semantics every engine is held to; only the
        runtime engines call it. ``use_packed=False`` forces the boolean
        reference stages; the default keeps activations bit-packed
        wherever the geometry is word-aligned (``channels % 64 == 0``),
        bit-exact either way.
        """
        images = np.asarray(images)
        if images.ndim == 3:
            images = images[None]
        if images.shape[1:] != self.input_shape:
            raise ValueError(
                f"input {images.shape[1:]} does not match accelerator "
                f"input {self.input_shape}"
            )
        n = images.shape[0]
        if n == 0:
            # The serving batcher may drain a batch to nothing (timeouts,
            # cancellations); an empty batch yields empty logits rather
            # than a crash deep in quantisation.
            logits = np.zeros((0, self.num_classes), dtype=np.int64)
            return (logits, []) if return_bits else logits
        tracer = get_tracer()
        trace_stages = tracer.enabled
        own_span = None
        if trace_stages:
            span_parent = tracer.current_span()
            if span_parent is None:
                # Standalone use (no runtime span active): open one root
                # so the stage spans still form a connected tree.
                own_span = tracer.start_span(
                    "hw.execute",
                    kind="hw",
                    parent=None,
                    attributes={"accelerator": self.name, "images": n},
                )
                span_parent = own_span
            trace_stages = span_parent.recording
        packed_enabled = use_packed is None or use_packed
        current: Optional[np.ndarray] = self.quantize_input(images)
        packed: Optional[PackedBits] = None
        bits_trace = []
        flat = False
        for stage in self.stages:
            stage_t0 = tracer.clock.monotonic() if trace_stages else 0.0
            stage_start = time.perf_counter() if stage_seconds is not None else 0.0
            cfg = stage.mvtu.config
            if stage.kind == "conv":
                # Emit packed output when the out-channel count is
                # word-aligned: pooling, the next SWU and the FC flatten
                # all consume the packed form directly.
                pack_out = packed_enabled and cfg.rows % WORD_BITS == 0
                if cfg.input_bits == 8:
                    out = stage.mvtu.execute(
                        stage.swu.execute(current), pack_output=pack_out
                    )
                elif packed is not None:
                    out = stage.mvtu.execute(
                        stage.swu.execute_packed(packed), pack_output=pack_out
                    )
                else:
                    rows = stage.swu.execute(current)
                    out = stage.mvtu.execute(
                        pack_bits(rows.astype(bool)), pack_output=pack_out
                    )
                oh, ow = stage.swu.config.out_hw
                if pack_out:
                    fm = PackedBits(
                        words=out.words.reshape(n, oh, ow, out.n_words),
                        nbits=out.nbits,
                    )
                    if stage.pool is not None:
                        fm = stage.pool.execute_packed(fm)
                    packed, current = fm, None
                else:
                    fm = out.reshape(n, oh, ow, cfg.rows)
                    if stage.pool is not None:
                        fm = stage.pool.execute(fm)
                    current, packed = fm, None
            else:  # fc
                if packed is not None:
                    if packed.words.ndim > 2:
                        # Flatten a channel-packed (n, h, w, cw) map:
                        # channels are the fastest logical axis, so the
                        # raveled words are the packed raveled bits.
                        h, w = packed.words.shape[1:3]
                        packed = PackedBits(
                            words=packed.words.reshape(n, -1),
                            nbits=h * w * packed.nbits,
                        )
                    vec = packed
                else:
                    if not flat:
                        current = current.reshape(n, -1)
                        flat = True
                    vec = pack_bits(np.asarray(current).astype(bool))
                pack_out = (
                    packed_enabled
                    and cfg.has_threshold
                    and cfg.rows % WORD_BITS == 0
                )
                out = stage.mvtu.execute(vec, pack_output=pack_out)
                if pack_out:
                    packed, current = out, None
                else:
                    current, packed = out, None
                    flat = True
            if stage_seconds is not None:
                stage_seconds.append(
                    (stage.name, time.perf_counter() - stage_start)
                )
            if trace_stages:
                # The ``cycles`` attribute carries the stage's modelled
                # initiation interval, so trace analysis can rank stages
                # the way the board would (analyze_pipeline's argmax),
                # not just by simulator wall time.
                tracer.record(
                    f"hw.{stage.name}",
                    kind="hw_stage",
                    start_s=stage_t0,
                    end_s=tracer.clock.monotonic(),
                    parent=span_parent,
                    attributes={
                        "cycles": stage.initiation_interval(), "images": n
                    },
                )
            if return_bits:
                # The trace is defined in the boolean domain regardless
                # of which path produced it (equivalence tests diff the
                # two paths stage by stage).
                bits_trace.append(
                    unpack_bits(packed, dtype=bool)
                    if packed is not None
                    else np.asarray(current)
                )
        if own_span is not None:
            own_span.finish()
        if current is None:
            raise RuntimeError(
                "datapath ended in the packed domain — the final stage "
                "must stream un-thresholded logits"
            )
        logits = np.asarray(current)
        if logits.shape != (n, self.num_classes):
            raise RuntimeError(
                f"datapath produced {logits.shape}, expected "
                f"{(n, self.num_classes)} — stage wiring is inconsistent"
            )
        if return_bits:
            return logits, bits_trace
        return logits

    def predict(
        self,
        images: np.ndarray,
        chunk_size: Optional[int] = None,
        num_workers: Optional[int] = None,
        use_plan: Optional[bool] = None,
        mode: Optional[str] = None,
        execution=None,
    ) -> np.ndarray:
        """Argmax classification over the integer logits.

        ``execution`` picks the engine (default: planned single-process
        inference); ``chunk_size`` bounds per-pass memory and
        ``num_workers`` fans chunks thread-parallel — both are merged
        into the config. Every engine is bit-identical by contract.

        ``use_plan``/``mode`` are **deprecated** shims: they emit one
        :class:`DeprecationWarning` and forward to the equivalent
        :class:`~repro.runtime.ExecutionConfig` (``mode="process"`` maps
        to ``isolation="process"`` — the shared-memory pool engine).
        """
        from repro.runtime import ExecutionConfig, deprecated_kwargs_config

        if num_workers is not None and num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        if use_plan is not None or mode is not None:
            execution = deprecated_kwargs_config(
                "FinnAccelerator.predict",
                execution,
                use_plan=use_plan,
                mode=mode,
                chunk_size=chunk_size,
                workers=num_workers,
            )
        else:
            execution = (
                execution if execution is not None else ExecutionConfig()
            ).merged(chunk_size=chunk_size, workers=num_workers)
        return self.run(images, execution).argmax(axis=1)

    # -- reporting -----------------------------------------------------------
    def stage_intervals(self) -> List[Tuple[str, int]]:
        """(stage name, initiation interval in cycles) per stage."""
        return [(s.name, s.initiation_interval()) for s in self.stages]

    def weight_bits(self) -> int:
        """Total on-chip weight storage in bits."""
        return sum(s.mvtu.config.weight_bits for s in self.stages)

    def total_ops_per_image(self) -> int:
        """Total MAC-equivalent operations per classified image."""
        return sum(
            s.mvtu.ops_per_image(s.vectors_per_image) for s in self.stages
        )

    def folding(self) -> FoldingConfig:
        """The PE/SIMD dimensioning actually compiled in."""
        return FoldingConfig(
            pe=tuple(s.mvtu.config.pe for s in self.stages),
            simd=tuple(s.mvtu.config.simd for s in self.stages),
        )


def _iter_blocks(model: Sequential):
    """Split the layer list into compiler blocks, validating the grammar."""
    layers = [(name, model[name]) for name in model.layer_names]
    i = 0
    while i < len(layers):
        name, layer = layers[i]
        if isinstance(layer, Conv2D):  # includes BinaryConv2D
            if i + 2 >= len(layers) or not (
                isinstance(layers[i + 1][1], BatchNorm)
                and isinstance(layers[i + 2][1], SignActivation)
            ):
                raise ValueError(
                    f"conv layer {name!r} must be followed by "
                    "BatchNorm -> SignActivation"
                )
            pool = None
            consumed = 3
            if i + 3 < len(layers) and isinstance(layers[i + 3][1], MaxPool2D):
                pool = layers[i + 3][1]
                consumed = 4
            yield ("conv", name, layer, layers[i + 1][1], pool)
            i += consumed
        elif isinstance(layer, Flatten):
            yield ("flatten", name, layer, None, None)
            i += 1
        elif isinstance(layer, Dense):  # includes BinaryDense
            if i + 2 < len(layers) and isinstance(layers[i + 1][1], BatchNorm):
                if not isinstance(layers[i + 2][1], SignActivation):
                    raise ValueError(
                        f"dense layer {name!r} with BatchNorm must be "
                        "followed by SignActivation"
                    )
                yield ("fc", name, layer, layers[i + 1][1], None)
                i += 3
            elif i == len(layers) - 1:
                yield ("logits", name, layer, None, None)
                i += 1
            else:
                raise ValueError(
                    f"dense layer {name!r} is neither thresholded nor final"
                )
        else:
            raise ValueError(
                f"layer {name!r} ({type(layer).__name__}) is not part of the "
                "deployable grammar"
            )


def compile_model(
    model: Sequential,
    folding: FoldingConfig,
    name: str = "accelerator",
) -> FinnAccelerator:
    """Compile a trained model into a :class:`FinnAccelerator`.

    The model must be in inference mode with meaningful batch-norm running
    statistics (i.e. trained); thresholds are folded from those statistics
    as in §III-A. ``folding`` supplies (PE, SIMD) per MVTU in order.
    """
    if model.input_shape is None:
        raise ValueError("model must be built with input_shape")
    blocks = list(_iter_blocks(model))
    # Early, named validation: arity and PE/SIMD divisibility fail here
    # (at FoldingConfig construction) rather than deep inside stage build.
    folding = folding.for_model(model)

    stages: List[HardwareStage] = []
    shape = tuple(model.input_shape)
    mvtu_idx = 0
    first_conv = True
    num_classes = None

    for kind, lname, layer, bn, pool in blocks:
        if kind == "flatten":
            size = int(np.prod(shape))
            shape = (size,)
            continue
        pe = folding.pe[mvtu_idx]
        simd = folding.simd[mvtu_idx]
        mvtu_idx += 1

        if kind == "conv":
            h, w, c = shape
            kh, kw = layer.kernel_size
            if layer.stride != (1, 1) or layer.padding != (0, 0):
                raise ValueError(
                    f"{lname}: hardware conv supports stride 1, no padding"
                )
            rows = layer.out_channels
            cols = kh * kw * c
            w_bin = sign(layer.weight.data).reshape(cols, rows).T
            input_bits = 8 if first_conv else 1
            scale, shift = bn.fused_scale_shift()
            if isinstance(layer, XnorConv2D):
                # XNOR-Net per-filter scales are strictly positive, so
                # BN(alpha * acc) folds by scaling the BN slope — the
                # thresholds absorb the scales for free (§II-B trade-off
                # discussion; see repro.nn.layers.xnor).
                scale = scale * layer.output_scales()
            if input_bits == 8:
                acc_bound = INPUT_SCALE * cols
                spec = fold_batchnorm_sign(
                    scale,
                    shift,
                    acc_min=-acc_bound,
                    acc_max=acc_bound,
                    acc_to_real=1.0 / INPUT_SCALE,
                )
            else:
                spec = fold_popcount_domain(scale, shift, fan_in=cols)
            cfg = MVTUConfig(
                name=lname,
                rows=rows,
                cols=cols,
                pe=pe,
                simd=simd,
                input_bits=input_bits,
            )
            swu = SlidingWindowUnit(
                SWUConfig(
                    name=f"{lname}.swu",
                    in_hw=(h, w),
                    channels=c,
                    kernel=(kh, kw),
                    stride=(1, 1),
                    simd=simd,
                )
            )
            oh, ow = swu.config.out_hw
            out_shape = (oh, ow, rows)
            pool_unit = None
            if pool is not None:
                pool_unit = MaxPoolUnit(
                    MaxPoolUnitConfig(
                        name=f"{lname}.pool",
                        in_hw=(oh, ow),
                        channels=rows,
                        pool=pool.pool_size,
                    )
                )
                out_shape = pool_unit.config.out_hw + (rows,)
            stages.append(
                HardwareStage(
                    name=lname,
                    kind="conv",
                    mvtu=MVTU(cfg, w_bin, spec),
                    vectors_per_image=oh * ow,
                    swu=swu,
                    pool=pool_unit,
                    in_shape=shape,
                    out_shape=out_shape,
                )
            )
            shape = out_shape
            first_conv = False
        else:  # fc or logits
            if len(shape) != 1:
                raise ValueError(
                    f"{lname}: dense stage reached with non-flat shape {shape} "
                    "(missing Flatten?)"
                )
            if not isinstance(layer, BinaryDense):
                raise ValueError(
                    f"{lname}: hardware FC layers must be BinaryDense "
                    f"(got {type(layer).__name__})"
                )
            rows = layer.out_features
            cols = layer.in_features
            if cols != shape[0]:
                raise ValueError(
                    f"{lname}: fan-in {cols} does not match incoming {shape[0]}"
                )
            w_bin = sign(layer.weight.data).T  # (out, in)
            if kind == "fc":
                scale, shift = bn.fused_scale_shift()
                if isinstance(layer, XnorDense):
                    scale = scale * layer.output_scales()
                spec = fold_popcount_domain(scale, shift, fan_in=cols)
                has_threshold = True
            else:
                if isinstance(layer, XnorDense):
                    raise ValueError(
                        f"{lname}: XNOR-Net scales on the logits layer would "
                        "need real multipliers in hardware; use BinaryDense "
                        "for the final layer"
                    )
                spec = None
                has_threshold = False
                num_classes = rows
            cfg = MVTUConfig(
                name=lname,
                rows=rows,
                cols=cols,
                pe=pe,
                simd=simd,
                input_bits=1,
                has_threshold=has_threshold,
            )
            stages.append(
                HardwareStage(
                    name=lname,
                    kind="fc",
                    mvtu=MVTU(cfg, w_bin, spec),
                    vectors_per_image=1,
                    in_shape=shape,
                    out_shape=(rows,),
                )
            )
            shape = (rows,)

    if num_classes is None:
        raise ValueError("model has no final logits layer")
    return FinnAccelerator(
        name=name,
        stages=stages,
        input_shape=tuple(model.input_shape),
        num_classes=num_classes,
    )
