"""Fault injection: bit upsets in the deployed accelerator.

Edge devices at entrances, airports and outdoor gates (§I) run for
months unattended; single-event upsets (SEUs) in the configuration or
BRAM contents are the classic reliability concern for SRAM FPGAs. BNNs
are an interesting case: a weight upset flips a ±1 synapse — the
smallest possible perturbation — and the threshold datapath has no
exponent bits to explode. This module injects controlled faults into a
compiled :class:`~repro.hw.compiler.FinnAccelerator`:

* ``flip_weight_bits`` — random synapse sign flips (weight-memory SEUs);
* ``perturb_thresholds`` — off-by-k threshold corruption (threshold
  storage upsets);

and measures the accuracy degradation curve, so deployments can size
scrubbing intervals against an acceptable error budget.

Faults are injected on *copies* — the input accelerator is never
mutated.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.hw.bitpack import pack_bits, unpack_bits
from repro.hw.compiler import FinnAccelerator
from repro.hw.mvtu import MVTU
from repro.hw.thresholding import ThresholdSpec
from repro.utils.rng import RngLike, as_generator

__all__ = [
    "FaultReport",
    "flip_weight_bits",
    "perturb_thresholds",
    "accuracy_under_faults",
]


@dataclass
class FaultReport:
    """Accuracy degradation across fault rates."""

    fault_kind: str
    rates: List[float]
    accuracies: List[float]
    baseline_accuracy: float

    def degradation(self) -> List[float]:
        """Accuracy loss per rate (positive numbers = degradation)."""
        return [self.baseline_accuracy - a for a in self.accuracies]

    def worst(self) -> float:
        return min(self.accuracies)

    def render(self) -> str:
        lines = [
            f"fault sweep: {self.fault_kind} "
            f"(baseline accuracy {self.baseline_accuracy:.3f})"
        ]
        for rate, acc in zip(self.rates, self.accuracies):
            bar = "#" * int(acc * 40)
            lines.append(f"  rate {rate:8.2e}: acc {acc:.3f} {bar}")
        return "\n".join(lines)


def _clone(accelerator: FinnAccelerator) -> FinnAccelerator:
    """Deep-copy an accelerator so faults never touch the original."""
    return copy.deepcopy(accelerator)


def _stage_weight_arrays(accelerator: FinnAccelerator):
    """Yield (stage, bipolar weight matrix) for every MVTU."""
    for stage in accelerator.stages:
        mvtu = stage.mvtu
        if mvtu.config.input_bits == 1:
            w = unpack_bits(mvtu._packed_weights)
        else:
            w = mvtu._int_weights.astype(np.float32)
        yield stage, w


def _write_stage_weights(stage, w: np.ndarray) -> None:
    """Write a bipolar weight matrix back into a stage's MVTU."""
    mvtu = stage.mvtu
    if mvtu.config.input_bits == 1:
        mvtu._packed_weights = pack_bits(w.astype(np.int8))
    else:
        mvtu._int_weights = w.astype(np.int32)


def flip_weight_bits(
    accelerator: FinnAccelerator,
    rate: float,
    rng: RngLike = None,
) -> FinnAccelerator:
    """Return a copy with each weight bit flipped with probability ``rate``.

    A flip negates the ±1 synapse — exactly what an SEU in the packed
    weight memory does to the XNOR result.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    gen = as_generator(rng)
    faulty = _clone(accelerator)
    for stage, w in _stage_weight_arrays(faulty):
        mask = gen.random(size=w.shape) < rate
        w = np.where(mask, -w, w)
        _write_stage_weights(stage, w)
    return faulty


def perturb_thresholds(
    accelerator: FinnAccelerator,
    rate: float,
    magnitude: int = 1,
    rng: RngLike = None,
) -> FinnAccelerator:
    """Return a copy with a fraction ``rate`` of thresholds shifted.

    Each selected channel's integer threshold moves by ±``magnitude``
    (clamped to the accumulator range) — the effect of an upset in the
    low-order bits of threshold storage.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    if magnitude < 1:
        raise ValueError(f"magnitude must be >= 1, got {magnitude}")
    gen = as_generator(rng)
    faulty = _clone(accelerator)
    for stage in faulty.stages:
        spec = stage.mvtu.thresholds
        if spec is None:
            continue
        thresholds = spec.thresholds.copy()
        mask = gen.random(size=thresholds.shape) < rate
        signs = gen.choice([-magnitude, magnitude], size=thresholds.shape)
        thresholds = np.where(mask, thresholds + signs, thresholds)
        thresholds = np.clip(thresholds, spec.acc_min - 1, spec.acc_max + 1)
        stage.mvtu.thresholds = ThresholdSpec(
            thresholds=thresholds.astype(np.int64),
            flipped=spec.flipped.copy(),
            acc_min=spec.acc_min,
            acc_max=spec.acc_max,
        )
    return faulty


def accuracy_under_faults(
    accelerator: FinnAccelerator,
    images: np.ndarray,
    labels: np.ndarray,
    rates: Sequence[float] = (1e-4, 1e-3, 1e-2, 5e-2),
    fault_kind: str = "weight",
    trials: int = 1,
    rng: RngLike = 0,
) -> FaultReport:
    """Sweep fault rates and measure classification accuracy.

    ``fault_kind`` is ``"weight"`` (sign flips) or ``"threshold"``
    (off-by-one threshold shifts); ``trials`` averages over independent
    fault patterns per rate.
    """
    if fault_kind not in ("weight", "threshold"):
        raise ValueError(
            f"fault_kind must be 'weight' or 'threshold', got {fault_kind!r}"
        )
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    labels = np.asarray(labels)
    gen = as_generator(rng)
    baseline = float((accelerator.predict(images) == labels).mean())
    accuracies: List[float] = []
    for rate in rates:
        scores = []
        for _ in range(trials):
            if fault_kind == "weight":
                faulty = flip_weight_bits(accelerator, rate, gen)
            else:
                faulty = perturb_thresholds(accelerator, rate, rng=gen)
            scores.append(float((faulty.predict(images) == labels).mean()))
        accuracies.append(float(np.mean(scores)))
    return FaultReport(
        fault_kind=fault_kind,
        rates=list(rates),
        accuracies=accuracies,
        baseline_accuracy=baseline,
    )
