"""XNOR + popcount GEMM kernels (Eq. 3 of the paper).

For bipolar vectors ``a, b`` of length ``F`` encoded as bits
(``+1 -> 1``), the dot product is::

    a . b = 2 * popcount(XNOR(a, b)) - F

The kernels below compute the *popcount of matches* ``p`` — what the
hardware accumulates — with the bipolar accumulator recoverable as
``2p - F``. Implementation notes (per the hpc-parallel guides): the
XNOR of tail padding is masked off by construction (both operands pad
with zero bits, XNOR would count them as matches, so we XOR and count
mismatches of the *valid* prefix instead: matches = F - mismatches; XOR
of zero padding is zero and contributes no mismatches — no explicit tail
mask needed), and large batch×neuron products are blocked to bound the
``(M, N, W)`` intermediate.
"""

from __future__ import annotations

import numpy as np

from repro.hw.bitpack import PackedBits, popcount

__all__ = ["xnor_matmul_popcount", "xnor_dot_popcount", "bipolar_from_popcount"]

# Block size (rows of A per slab) keeping the (block, N, W) xor tensor
# small enough to stay cache-friendly on a laptop-class core.
_BLOCK_ELEMS = 4_000_000


def bipolar_from_popcount(p: np.ndarray, fan_in: int) -> np.ndarray:
    """Convert a match-popcount ``p`` to the bipolar accumulator ``2p - F``."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    return 2 * p.astype(np.int64) - int(fan_in)


def xnor_dot_popcount(a: PackedBits, b: PackedBits) -> np.ndarray:
    """Element-wise-broadcast XNOR dot of two packed tensors.

    ``a`` and ``b`` must share ``nbits`` and have broadcastable leading
    shapes; returns the match count with the broadcast shape.
    """
    if a.nbits != b.nbits:
        raise ValueError(f"bit lengths differ: {a.nbits} vs {b.nbits}")
    mismatches = popcount(np.bitwise_xor(a.words, b.words)).sum(axis=-1)
    return a.nbits - mismatches


def xnor_matmul_popcount(a: PackedBits, b: PackedBits) -> np.ndarray:
    """Binary GEMM: returns ``(M, N)`` match counts.

    ``a`` packs ``(M, F)`` activations; ``b`` packs ``(N, F)`` weight rows
    (one row per output neuron — note this is the *transpose* of the
    float GEMM convention, matching the hardware's weight layout where
    each PE holds whole rows).
    """
    if a.words.ndim != 2 or b.words.ndim != 2:
        raise ValueError(
            f"expected 2-D packed operands, got {a.words.shape} and {b.words.shape}"
        )
    if a.nbits != b.nbits:
        raise ValueError(f"fan-in mismatch: {a.nbits} vs {b.nbits}")
    m = a.words.shape[0]
    n = b.words.shape[0]
    w = a.n_words
    out = np.empty((m, n), dtype=np.int64)
    block = max(1, _BLOCK_ELEMS // max(1, n * w))
    bw = b.words[None, :, :]
    for start in range(0, m, block):
        stop = min(m, start + block)
        xor = np.bitwise_xor(a.words[start:stop, None, :], bw)
        out[start:stop] = np.bitwise_count(xor).sum(axis=-1, dtype=np.int64)
    # out currently holds mismatch counts; matches = F - mismatches.
    np.subtract(a.nbits, out, out=out)
    return out
