"""XNOR + popcount GEMM kernels (Eq. 3 of the paper).

For bipolar vectors ``a, b`` of length ``F`` encoded as bits
(``+1 -> 1``), the dot product is::

    a . b = 2 * popcount(XNOR(a, b)) - F

The kernels below compute the *popcount of matches* ``p`` — what the
hardware accumulates — with the bipolar accumulator recoverable as
``2p - F``. Implementation notes (per the hpc-parallel guides): the
XNOR of tail padding is masked off by construction (both operands pad
with zero bits, XNOR would count them as matches, so we XOR and count
mismatches of the *valid* prefix instead: matches = F - mismatches; XOR
of zero padding is zero and contributes no mismatches — no explicit tail
mask needed), and the GEMM accumulates per packed word into the
``(M, N)`` output — blocked over rows with an auto-tuned slab size — so
no ``(M, N, W)`` intermediate is ever materialised.
"""

from __future__ import annotations

import numpy as np

from repro.hw.bitpack import PackedBits, popcount

__all__ = [
    "xnor_matmul_popcount",
    "xnor_dot_popcount",
    "bipolar_from_popcount",
    "gemm_block_rows",
]

# Target working-set size (elements) for one blocked GEMM pass: the
# per-word xor temporary plus the int64 accumulator slab, tuned to stay
# inside a laptop-class L2. The row block size is derived from this and
# the operand shapes in _choose_block.
_BLOCK_ELEMS = 262_144


def _choose_block(m: int, n: int, w: int) -> int:
    """Rows of A per GEMM slab, auto-tuned from the operand shapes.

    The inner loop revisits the ``(block, N)`` accumulator once per word,
    so the slab (8-byte xor temporary + 8-byte accumulator per element)
    must stay cache-resident across all ``w`` passes; wider weight
    matrices therefore get proportionally shorter blocks. A single-word
    operand needs no revisits, so it gets one maximal pass.
    """
    if w <= 1:
        return m
    return max(1, min(m, _BLOCK_ELEMS // max(1, n)))


def gemm_block_rows(m: int, n: int, w: int) -> int:
    """Public row-block size for ``(m, n)`` output over ``w`` packed words.

    Callers that preallocate the kernel's per-slab scratch (see the
    ``scratch`` parameter of :func:`xnor_matmul_popcount`) size it as
    ``(min(gemm_block_rows(m, n, w), m), n)``.
    """
    return _choose_block(m, n, w)


def bipolar_from_popcount(p: np.ndarray, fan_in: int) -> np.ndarray:
    """Convert a match-popcount ``p`` to the bipolar accumulator ``2p - F``."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    return 2 * p.astype(np.int64) - int(fan_in)


def xnor_dot_popcount(a: PackedBits, b: PackedBits) -> np.ndarray:
    """Element-wise-broadcast XNOR dot of two packed tensors.

    ``a`` and ``b`` must share ``nbits`` and have broadcastable leading
    shapes; returns the match count with the broadcast shape.
    """
    if a.nbits != b.nbits:
        raise ValueError(f"bit lengths differ: {a.nbits} vs {b.nbits}")
    mismatches = popcount(np.bitwise_xor(a.words, b.words)).sum(axis=-1)
    return a.nbits - mismatches


def xnor_matmul_popcount(
    a: PackedBits,
    b: PackedBits,
    out: np.ndarray = None,
    b_cols: np.ndarray = None,
    scratch=None,
) -> np.ndarray:
    """Binary GEMM: returns ``(M, N)`` match counts.

    ``a`` packs ``(M, F)`` activations; ``b`` packs ``(N, F)`` weight rows
    (one row per output neuron — note this is the *transpose* of the
    float GEMM convention, matching the hardware's weight layout where
    each PE holds whole rows).

    The allocation-free form (used by the compiled inference plans)
    passes ``out`` (``int64 (M, N)``), ``b_cols`` (the precomputed
    ``ascontiguousarray(b.words.T)`` — for a fixed weight operand this
    transpose-copy is per-call waste) and ``scratch`` (a pair of
    ``(block, N)`` uint64/uint8 slabs, sized via :func:`gemm_block_rows`).
    All forms are bit-identical.
    """
    if a.words.ndim != 2 or b.words.ndim != 2:
        raise ValueError(
            f"expected 2-D packed operands, got {a.words.shape} and {b.words.shape}"
        )
    if a.nbits != b.nbits:
        raise ValueError(f"fan-in mismatch: {a.nbits} vs {b.nbits}")
    m = a.words.shape[0]
    n = b.words.shape[0]
    w = a.n_words
    if out is None:
        out = np.empty((m, n), dtype=np.int64)
    elif out.shape != (m, n) or out.dtype != np.int64:
        raise ValueError(
            f"out must be int64 {(m, n)}, got {out.dtype} {out.shape}"
        )
    block = _choose_block(m, n, w)
    # Per-word accumulation: each pass XORs one packed word column of A
    # against the matching column of B and adds its popcount into the
    # (block, N) mismatch accumulator — the (block, N, W) xor tensor of
    # the naive broadcast never exists.
    if b_cols is None:
        b_cols = np.ascontiguousarray(b.words.T)  # (w, n): one row per word
    elif b_cols.shape != (w, n) or b_cols.dtype != np.uint64:
        raise ValueError(
            f"b_cols must be uint64 {(w, n)}, got {b_cols.dtype} {b_cols.shape}"
        )
    if scratch is None:
        xor_buf = np.empty((min(block, m), n), dtype=np.uint64)
        cnt_buf = np.empty((min(block, m), n), dtype=np.uint8)
    else:
        xor_buf, cnt_buf = scratch
        if (
            xor_buf.shape[0] < min(block, m)
            or xor_buf.shape[1] != n
            or xor_buf.dtype != np.uint64
            or cnt_buf.shape != xor_buf.shape
            or cnt_buf.dtype != np.uint8
        ):
            raise ValueError(
                f"scratch must be uint64/uint8 ({min(block, m)}, {n}) slabs, "
                f"got {xor_buf.dtype} {xor_buf.shape} / "
                f"{cnt_buf.dtype} {cnt_buf.shape}"
            )
    for start in range(0, m, block):
        stop = min(m, start + block)
        rows = stop - start
        aw = a.words[start:stop]
        out_slab = out[start:stop]
        xor = xor_buf[:rows]
        cnt = cnt_buf[:rows]
        for k in range(w):
            np.bitwise_xor(aw[:, k, None], b_cols[k][None, :], out=xor)
            np.bitwise_count(xor, out=cnt)
            if k == 0:
                np.copyto(out_slab, cnt)
            else:
                np.add(out_slab, cnt, out=out_slab)
    # out currently holds mismatch counts; matches = F - mismatches.
    np.subtract(a.nbits, out, out=out)
    return out
