"""Board power model and the two operating modes of §IV-B.

The paper measures power "at the power supply of the board (includes
both PS and PL)" and reports two operating points:

* **idle ~1.6 W** for all prototypes — "required mostly by the soft-core
  on the SoC", i.e. the ARM processing system plus static PL power. This
  is the single-entrance/gate mode: a classification is only triggered
  when a subject passes, so the accelerator sits idle almost always.
* **active (pipeline full)** — the crowd-statistics mode; dynamic power
  scales with the toggling fabric (LUTs), block RAMs and DSPs at the
  design clock.

Dynamic coefficients are typical Zynq-7020 figures (Vivado XPE ballpark);
the paper only publishes the idle point, which the model reproduces by
construction, and total active power lands in the 2–2.7 W range typical
of PYNQ-class FINN deployments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.resources import ResourceEstimate

__all__ = ["PowerModel", "PowerReport", "IDLE_POWER_W"]

#: Measured idle board power from §IV-B (PS + static PL).
IDLE_POWER_W = 1.6

# Dynamic power coefficients at 100 MHz with typical toggle rates.
_W_PER_LUT = 2.0e-5
_W_PER_BRAM = 2.3e-3
_W_PER_DSP = 1.2e-3


@dataclass
class PowerReport:
    """Power figures for one accelerator at one operating point."""

    idle_w: float
    active_w: float
    dynamic_w: float
    clock_mhz: float

    def energy_per_classification_mj(self, fps: float) -> float:
        """Active energy per classified frame in millijoules."""
        if fps <= 0:
            raise ValueError(f"fps must be positive, got {fps}")
        return self.active_w / fps * 1e3

    def report(self) -> str:
        return (
            f"idle {self.idle_w:.2f} W, active {self.active_w:.2f} W "
            f"(dynamic {self.dynamic_w:.2f} W @ {self.clock_mhz:.0f} MHz)"
        )


class PowerModel:
    """Static + dynamic power estimator."""

    def __init__(
        self,
        idle_w: float = IDLE_POWER_W,
        w_per_lut: float = _W_PER_LUT,
        w_per_bram: float = _W_PER_BRAM,
        w_per_dsp: float = _W_PER_DSP,
    ) -> None:
        if idle_w <= 0:
            raise ValueError(f"idle power must be positive, got {idle_w}")
        if min(w_per_lut, w_per_bram, w_per_dsp) < 0:
            raise ValueError("dynamic coefficients must be non-negative")
        self.idle_w = float(idle_w)
        self.w_per_lut = float(w_per_lut)
        self.w_per_bram = float(w_per_bram)
        self.w_per_dsp = float(w_per_dsp)

    def estimate(
        self,
        resources: ResourceEstimate,
        clock_mhz: float = 100.0,
        utilization: float = 1.0,
    ) -> PowerReport:
        """Power at a given clock and pipeline utilisation.

        ``utilization`` is the duty cycle of the accelerator: 1.0 for the
        crowd mode (pipeline always full), ~0 for the gate mode where the
        fabric only toggles during the occasional triggered
        classification.
        """
        if clock_mhz <= 0:
            raise ValueError(f"clock must be positive, got {clock_mhz}")
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization must be in [0, 1], got {utilization}")
        f_scale = clock_mhz / 100.0
        dynamic = (
            self.w_per_lut * resources.lut
            + self.w_per_bram * resources.bram36
            + self.w_per_dsp * resources.dsp
        ) * f_scale * utilization
        return PowerReport(
            idle_w=self.idle_w,
            active_w=self.idle_w + dynamic,
            dynamic_w=dynamic,
            clock_mhz=float(clock_mhz),
        )

    def gate_mode_average_w(
        self,
        resources: ResourceEstimate,
        classifications_per_hour: float,
        classification_us: float,
        clock_mhz: float = 100.0,
    ) -> float:
        """Average power in single-gate mode.

        The accelerator wakes for ``classification_us`` per subject; the
        rest of the time only idle power is drawn — this is why §IV-B's
        gate deployments sit at ~1.6 W and "improve the battery-life of
        the device".
        """
        if classifications_per_hour < 0 or classification_us < 0:
            raise ValueError("rates and durations must be non-negative")
        duty = min(1.0, classifications_per_hour * classification_us * 1e-6 / 3600.0)
        active = self.estimate(resources, clock_mhz, utilization=1.0).active_w
        return duty * active + (1.0 - duty) * self.idle_w
