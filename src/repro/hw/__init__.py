"""``repro.hw`` — FINN-style streaming BNN accelerator simulator.

Functional (bit-exact integer datapath: XNOR+popcount MVTUs, folded
batch-norm thresholds, OR-pooling) and performance (cycle-level pipeline
IIs, LUT/BRAM/DSP cost model calibrated to the paper's Table II, board
power model) simulation of the BinaryCoP accelerator of §III-B/IV-B.
"""

from repro.hw.bitpack import PackedBits, pack_bits, popcount, unpack_bits
from repro.hw.buffers import BufferPlan, StageBuffer, plan_buffers
from repro.hw.calibration import solve_lut_coefficients
from repro.hw.export import export_accelerator, load_accelerator
from repro.hw.compiler import (
    FinnAccelerator,
    FoldingConfig,
    HardwareStage,
    compile_model,
)
from repro.hw.devices import DEVICES, Z7010, Z7020, Device, fit_report
from repro.hw.faults import (
    FaultReport,
    accuracy_under_faults,
    flip_weight_bits,
    perturb_thresholds,
)
from repro.hw.dse import (
    DesignPoint,
    balance_folding,
    explore,
    legal_foldings,
    optimize_for_device,
    pareto_frontier,
)
from repro.hw.maxpool_unit import MaxPoolUnit, MaxPoolUnitConfig
from repro.hw.mvtu import MVTU, MVTUConfig
from repro.hw.pipeline import (
    MEASURED_EFFICIENCY,
    PipelineTiming,
    analyze_pipeline,
    simulate_stream,
)
from repro.hw.power import IDLE_POWER_W, PowerModel, PowerReport
from repro.hw.resources import (
    TABLE2_CALIBRATION,
    ResourceEstimate,
    estimate_resources,
)
from repro.hw.swu import SlidingWindowUnit, SWUConfig
from repro.hw.thresholding import (
    ThresholdSpec,
    apply_thresholds,
    fold_batchnorm_sign,
    fold_popcount_domain,
)
from repro.hw.xnor_kernels import (
    bipolar_from_popcount,
    xnor_dot_popcount,
    xnor_matmul_popcount,
)

__all__ = [
    "BufferPlan",
    "DEVICES",
    "DesignPoint",
    "Device",
    "FaultReport",
    "FinnAccelerator",
    "FoldingConfig",
    "HardwareStage",
    "IDLE_POWER_W",
    "MEASURED_EFFICIENCY",
    "MVTU",
    "MVTUConfig",
    "MaxPoolUnit",
    "MaxPoolUnitConfig",
    "PackedBits",
    "PipelineTiming",
    "PowerModel",
    "PowerReport",
    "ResourceEstimate",
    "SWUConfig",
    "SlidingWindowUnit",
    "TABLE2_CALIBRATION",
    "ThresholdSpec",
    "Z7010",
    "Z7020",
    "accuracy_under_faults",
    "analyze_pipeline",
    "apply_thresholds",
    "balance_folding",
    "bipolar_from_popcount",
    "compile_model",
    "estimate_resources",
    "export_accelerator",
    "explore",
    "fit_report",
    "flip_weight_bits",
    "fold_batchnorm_sign",
    "fold_popcount_domain",
    "legal_foldings",
    "load_accelerator",
    "pack_bits",
    "optimize_for_device",
    "pareto_frontier",
    "perturb_thresholds",
    "plan_buffers",
    "popcount",
    "simulate_stream",
    "solve_lut_coefficients",
    "StageBuffer",
    "unpack_bits",
    "xnor_dot_popcount",
    "xnor_matmul_popcount",
]
