"""Target device catalog: Zynq-7000 SoCs used in the paper (§IV-A).

The experiments target the Xilinx XC7Z020 (Z7020); the µ-CNV design can
also be synthesised on the more constrained XC7Z010 (Z7010) when XNOR
operations are offloaded to DSP blocks (OrthrusPE [27]). Resource limits
are the public Zynq-7000 datasheet values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["Device", "Z7020", "Z7010", "DEVICES", "fit_report", "host_report"]


@dataclass(frozen=True)
class Device:
    """An FPGA SoC target with its programmable-logic resource budget."""

    name: str
    luts: int
    flip_flops: int
    bram36: float  # BRAM in 36Kb-block units
    dsp48: int
    default_clock_mhz: float = 100.0
    ps_cores: int = 2  # Zynq-7000 PS: dual-core Cortex-A9

    def __post_init__(self) -> None:
        if min(self.luts, self.flip_flops, self.dsp48) <= 0 or self.bram36 <= 0:
            raise ValueError(f"{self.name}: resource budgets must be positive")

    def fits(self, lut: float, bram36: float, dsp: float) -> bool:
        """Whether a design's requirements fit this device."""
        return lut <= self.luts and bram36 <= self.bram36 and dsp <= self.dsp48

    def utilisation(self, lut: float, bram36: float, dsp: float) -> Dict[str, float]:
        """Fractional utilisation per resource class."""
        return {
            "lut": lut / self.luts,
            "bram36": bram36 / self.bram36,
            "dsp": dsp / self.dsp48,
        }


#: The paper's primary target (e.g. PYNQ-Z1/Z2 boards).
Z7020 = Device(name="XC7Z020", luts=53_200, flip_flops=106_400, bram36=140, dsp48=220)

#: The heavily constrained low-cost part µ-CNV targets with DSP offload.
Z7010 = Device(name="XC7Z010", luts=17_600, flip_flops=35_200, bram36=60, dsp48=80)

DEVICES: Dict[str, Device] = {d.name: d for d in (Z7020, Z7010)}


def host_report(device: Device = Z7020) -> List[str]:
    """Simulation-host parallelism vs. the target SoC's PS cores.

    The process pool (:mod:`repro.parallel`) scales planned inference
    across host cores; this report states the host's core budget next to
    the Zynq processing system's, so multi-worker simulator FPS is read
    as *host* throughput — not a claim about the board, whose PL
    pipeline rate the cycle model covers separately.
    """
    from repro.parallel.host import host_info, recommended_workers

    info = host_info()
    physical = info["physical_cores"]
    return [
        (
            f"simulation host: {info['logical_cpus']} logical CPUs"
            + (f", {physical} physical cores" if physical else "")
            + f" -> {recommended_workers()} pool workers recommended"
        ),
        (
            f"{device.name} PS: {device.ps_cores}x Cortex-A9 "
            f"(PL pipeline modelled separately)"
        ),
    ]


def fit_report(lut: float, bram36: float, dsp: float) -> List[str]:
    """One line per catalog device: fits / which resource overflows."""
    lines = []
    for dev in DEVICES.values():
        if dev.fits(lut, bram36, dsp):
            util = dev.utilisation(lut, bram36, dsp)
            lines.append(
                f"{dev.name}: FITS (lut {util['lut']:.0%}, "
                f"bram {util['bram36']:.0%}, dsp {util['dsp']:.0%})"
            )
        else:
            over = []
            if lut > dev.luts:
                over.append(f"LUT {lut:.0f}>{dev.luts}")
            if bram36 > dev.bram36:
                over.append(f"BRAM {bram36:.1f}>{dev.bram36}")
            if dsp > dev.dsp48:
                over.append(f"DSP {dsp:.0f}>{dev.dsp48}")
            lines.append(f"{dev.name}: does not fit ({', '.join(over)})")
    return lines
