"""Sliding Window Unit (SWU).

"For convolutional layers, an additional sliding-window unit reshapes the
binarized activation maps to create a single, wide input feature map
memory, which can efficiently be accessed by the corresponding MVTU"
(§III-B). Functionally this is im2col over *bit* tensors; in timing terms
the unit streams one SIMD-wide group of window elements per cycle, so its
initiation interval per image is::

    out_h * out_w * (K*K*C / simd)

The SWU and its MVTU run concurrently in the dataflow pipeline; whichever
is slower bounds the layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.hw.bitpack import WORD_BITS, PackedBits
from repro.nn.functional import conv_output_hw, im2col

__all__ = ["SWUConfig", "SlidingWindowUnit"]


@dataclass(frozen=True)
class SWUConfig:
    """Geometry of one sliding-window unit."""

    name: str
    in_hw: Tuple[int, int]
    channels: int
    kernel: Tuple[int, int] = (3, 3)
    stride: Tuple[int, int] = (1, 1)
    simd: int = 1

    def __post_init__(self) -> None:
        if self.channels <= 0:
            raise ValueError(f"{self.name}: channels must be positive")
        if self.simd <= 0:
            raise ValueError(f"{self.name}: simd must be positive")
        window = self.kernel[0] * self.kernel[1] * self.channels
        if window % self.simd != 0:
            raise ValueError(
                f"{self.name}: SIMD={self.simd} does not divide window "
                f"size {window}"
            )
        conv_output_hw(self.in_hw, self.kernel, self.stride, (0, 0))

    @property
    def out_hw(self) -> Tuple[int, int]:
        return conv_output_hw(self.in_hw, self.kernel, self.stride, (0, 0))

    @property
    def window_elems(self) -> int:
        return self.kernel[0] * self.kernel[1] * self.channels

    @property
    def supports_packed(self) -> bool:
        """Whether the packed-domain gather can run for this geometry.

        Packing is along channels (fastest axis of a window row), so a
        window built from whole channel words is itself a valid packed
        row exactly when the channel count is word-aligned — CNV's
        64/128/256-channel stages qualify; n-CNV/µ-CNV's 16/32-channel
        stages fall back to the boolean path.
        """
        return self.channels % WORD_BITS == 0


class SlidingWindowUnit:
    """Functional + timed SWU."""

    def __init__(self, config: SWUConfig) -> None:
        self.config = config
        self._gather_elems: np.ndarray = None  # lazy per-element index table
        self._gather_words: np.ndarray = None  # lazy per-word index table

    def _window_index(self, channels_like: int) -> np.ndarray:
        """Flat gather indices mapping a raveled ``(H, W, channels_like)``
        map to raveled ``(oh, ow, kh, kw, channels_like)`` window rows —
        the im2col layout (window cells in raster order, channels
        fastest). Computed once per unit and cached: batch-independent,
        so every execution plan compiled for this unit shares it.
        """
        cfg = self.config
        h, w = cfg.in_hw
        kh, kw = cfg.kernel
        sh, sw = cfg.stride
        src = np.arange(h * w * channels_like, dtype=np.intp).reshape(
            h, w, channels_like
        )
        windows = sliding_window_view(src, (kh, kw), axis=(0, 1))
        windows = windows[::sh, ::sw]  # (oh, ow, c, kh, kw)
        return np.ascontiguousarray(
            windows.transpose(0, 1, 3, 4, 2)
        ).reshape(-1)

    def gather_indices(self) -> np.ndarray:
        """Cached element-domain gather table (``oh*ow*K*K*C`` entries)."""
        if self._gather_elems is None:
            self._gather_elems = self._window_index(self.config.channels)
        return self._gather_elems

    def gather_word_indices(self) -> np.ndarray:
        """Cached word-domain gather table (``oh*ow*K*K*C/64`` entries)."""
        if self._gather_words is None:
            if not self.config.supports_packed:
                raise ValueError(
                    f"{self.config.name}: packed gather needs word-aligned "
                    f"channels, got {self.config.channels}"
                )
            self._gather_words = self._window_index(
                self.config.channels // WORD_BITS
            )
        return self._gather_words

    def execute(self, feature_map: np.ndarray, out: np.ndarray = None) -> np.ndarray:
        """Reshape ``(n, H, W, C)`` maps into ``(n * oh * ow, K*K*C)`` rows.

        Works on any dtype (bits travel as bool/int8; the first layer's
        pixels as uint8/int32). Row order is raster-scan over output
        pixels — the order the MVTU consumes. Integer/bool inputs return
        ``int64`` rows via the cached gather table; ``out`` (int64,
        ``(n*oh*ow, K*K*C)``, C-contiguous) makes that path
        allocation-free when the input is already ``int64``.
        """
        cfg = self.config
        n, h, w, c = feature_map.shape
        if (h, w) != cfg.in_hw or c != cfg.channels:
            raise ValueError(
                f"{cfg.name}: feature map {feature_map.shape[1:]} does not "
                f"match configured {cfg.in_hw + (cfg.channels,)}"
            )
        oh, ow = cfg.out_hw
        if np.issubdtype(feature_map.dtype, np.integer) or feature_map.dtype == bool:
            # Integer-domain gather: exact (values are small ints), no
            # float64 im2col round-trip.
            src = feature_map.astype(np.int64, copy=False).reshape(n, -1)
            idx = self.gather_indices()
            if out is not None:
                if out.shape != (n * oh * ow, cfg.window_elems) or (
                    out.dtype != np.int64
                ):
                    raise ValueError(
                        f"{cfg.name}: out must be int64 "
                        f"{(n * oh * ow, cfg.window_elems)}, got "
                        f"{out.dtype} {out.shape}"
                    )
                if not out.flags.c_contiguous:
                    raise ValueError(f"{cfg.name}: out must be C-contiguous")
                src.take(idx, axis=1, out=out.reshape(n, -1))
                return out
            return src.take(idx, axis=1).reshape(
                n * oh * ow, cfg.window_elems
            )
        if out is not None:
            raise ValueError(
                f"{cfg.name}: out= is only supported for integer inputs"
            )
        cols = im2col(feature_map, cfg.kernel, cfg.stride, (0, 0))
        return cols.reshape(n * oh * ow, cfg.window_elems)

    def execute_packed(self, packed: PackedBits, out: np.ndarray = None) -> PackedBits:
        """Packed-domain im2col: gather channel *words* instead of bits.

        ``packed`` holds a channel-packed feature map — ``words`` of
        shape ``(n, H, W, C / 64)`` with ``nbits == C`` — and the result
        packs the same window rows :meth:`execute` would produce:
        because the window layout is ``(kh, kw, C)`` with channels
        fastest and ``C`` is word-aligned, concatenating the window
        cells' words *is* the packed concatenation of their bits. The
        gather therefore moves 64 bits per element and never leaves the
        bit domain (no float64 im2col, no re-pack).
        """
        cfg = self.config
        if not cfg.supports_packed:
            raise ValueError(
                f"{cfg.name}: packed gather needs word-aligned channels, "
                f"got {cfg.channels}"
            )
        words = packed.words
        if words.ndim != 4:
            raise ValueError(
                f"{cfg.name}: expected packed (n, H, W, C/64) words, got "
                f"{words.shape}"
            )
        n, h, w, _ = words.shape
        if (h, w) != cfg.in_hw or packed.nbits != cfg.channels:
            raise ValueError(
                f"{cfg.name}: packed map {(h, w, packed.nbits)} does not "
                f"match configured {cfg.in_hw + (cfg.channels,)}"
            )
        oh, ow = cfg.out_hw
        idx = self.gather_word_indices()
        n_words = cfg.window_elems // WORD_BITS
        flat = words.reshape(n, -1)
        if out is not None:
            if out.shape != (n * oh * ow, n_words) or out.dtype != np.uint64:
                raise ValueError(
                    f"{cfg.name}: out must be uint64 "
                    f"{(n * oh * ow, n_words)}, got {out.dtype} {out.shape}"
                )
            if not out.flags.c_contiguous:
                raise ValueError(f"{cfg.name}: out must be C-contiguous")
            flat.take(idx, axis=1, out=out.reshape(n, -1))
            rows = out
        else:
            rows = flat.take(idx, axis=1).reshape(n * oh * ow, n_words)
        return PackedBits(words=rows, nbits=cfg.window_elems)

    def cycles_per_image(self) -> int:
        """Streaming initiation interval for one image."""
        oh, ow = self.config.out_hw
        return oh * ow * (self.config.window_elems // self.config.simd)
