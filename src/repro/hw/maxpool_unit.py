"""Max-pool as boolean OR (§III-B).

"Max-pool layers are implemented as boolean OR operations, since a single
binary '1' value suffices to make the entire pool window output equal to
1." The unit operates on the bit representation directly; its timing is
one window per cycle (it is never the pipeline bottleneck, but it is
modelled for completeness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.hw.bitpack import PackedBits
from repro.nn.functional import conv_output_hw, pool_windows

__all__ = ["MaxPoolUnitConfig", "MaxPoolUnit"]


@dataclass(frozen=True)
class MaxPoolUnitConfig:
    """Geometry of one OR-pooling unit (non-overlapping windows)."""

    name: str
    in_hw: Tuple[int, int]
    channels: int
    pool: Tuple[int, int] = (2, 2)

    def __post_init__(self) -> None:
        if self.channels <= 0:
            raise ValueError(f"{self.name}: channels must be positive")
        h, w = self.in_hw
        ph, pw = self.pool
        if h % ph != 0 or w % pw != 0:
            raise ValueError(
                f"{self.name}: pool {self.pool} does not tile {self.in_hw}"
            )

    @property
    def out_hw(self) -> Tuple[int, int]:
        return conv_output_hw(self.in_hw, self.pool, self.pool, (0, 0))


class MaxPoolUnit:
    """Functional + timed boolean-OR pooling unit."""

    def __init__(self, config: MaxPoolUnitConfig) -> None:
        self.config = config

    def execute(self, bits: np.ndarray, out: np.ndarray = None) -> np.ndarray:
        """OR-reduce ``(n, H, W, C)`` boolean maps over each pool window.

        ``out`` (bool, ``(n, H/ph, W/pw, C)``) makes the reduce
        allocation-free; the windows are non-overlapping tiles, so the
        tiled reshape is a view and the whole unit is one ufunc reduce.
        """
        cfg = self.config
        if bits.dtype != bool:
            raise TypeError(
                f"{cfg.name}: OR-pooling operates on boolean bit maps, got "
                f"{bits.dtype} (binarise first — pooling before sign() would "
                f"not commute with the OR trick)"
            )
        n, h, w, c = bits.shape
        if (h, w) != cfg.in_hw or c != cfg.channels:
            raise ValueError(
                f"{cfg.name}: feature map {bits.shape[1:]} does not match "
                f"configured {cfg.in_hw + (cfg.channels,)}"
            )
        if out is None:
            windows = pool_windows(bits.astype(np.uint8), cfg.pool, cfg.pool)
            return windows.any(axis=3)
        ph, pw = cfg.pool
        oh, ow = cfg.out_hw
        if out.shape != (n, oh, ow, c) or out.dtype != bool:
            raise ValueError(
                f"{cfg.name}: out must be bool {(n, oh, ow, c)}, got "
                f"{out.dtype} {out.shape}"
            )
        tiled = bits.reshape(n, oh, ph, ow, pw, c)
        np.logical_or.reduce(tiled, axis=(2, 4), out=out)
        return out

    def execute_packed(self, packed: PackedBits, out: np.ndarray = None) -> PackedBits:
        """OR-reduce a channel-packed map word-wise: 64 channels per op.

        ``packed.words`` is ``(n, H, W, C/64)``; the boolean OR of the
        pool window is exactly the ``bitwise_or`` of its packed words,
        so the unit never has to unpack — the software realisation of
        the paper's "a single binary '1' suffices" observation.
        """
        cfg = self.config
        words = packed.words
        if words.ndim != 4:
            raise ValueError(
                f"{cfg.name}: expected packed (n, H, W, C/64) words, got "
                f"{words.shape}"
            )
        n, h, w, cw = words.shape
        if (h, w) != cfg.in_hw or packed.nbits != cfg.channels:
            raise ValueError(
                f"{cfg.name}: packed map {(h, w, packed.nbits)} does not "
                f"match configured {cfg.in_hw + (cfg.channels,)}"
            )
        ph, pw = cfg.pool
        oh, ow = cfg.out_hw
        tiled = words.reshape(n, oh, ph, ow, pw, cw)
        if out is not None:
            if out.shape != (n, oh, ow, cw) or out.dtype != np.uint64:
                raise ValueError(
                    f"{cfg.name}: out must be uint64 {(n, oh, ow, cw)}, got "
                    f"{out.dtype} {out.shape}"
                )
            np.bitwise_or.reduce(tiled, axis=(2, 4), out=out)
            return PackedBits(words=out, nbits=packed.nbits)
        pooled = np.bitwise_or.reduce(
            np.bitwise_or.reduce(tiled, axis=4), axis=2
        )
        return PackedBits(words=pooled, nbits=packed.nbits)

    def cycles_per_image(self) -> int:
        """One output window per cycle."""
        oh, ow = self.config.out_hw
        return oh * ow
