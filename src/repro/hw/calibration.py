"""Provenance of the resource-model calibration.

The LUT coefficients in :mod:`repro.hw.resources` are not hand-tuned
magic numbers: they are the unique solution of the linear system formed
by the paper's three Table II designs under the structural cost model

    LUT = a * sum(PE*SIMD) + b * sum(PE) + c * n_MVTU + d.

This module re-derives them from first principles so the calibration is
reproducible code rather than a constant in a comment, and so the same
procedure can be re-run against a different published design set (e.g.
when porting the model to another FINN paper's tables).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.hw.compiler import FoldingConfig

__all__ = ["DesignObservation", "solve_lut_coefficients", "TABLE2_OBSERVATIONS"]


@dataclass(frozen=True)
class DesignObservation:
    """One published design point: its folding and measured LUT count."""

    name: str
    folding: FoldingConfig
    lut: float

    @property
    def lane_sum(self) -> int:
        return sum(p * s for p, s in zip(self.folding.pe, self.folding.simd))

    @property
    def pe_sum(self) -> int:
        return sum(self.folding.pe)

    @property
    def n_mvtus(self) -> int:
        return len(self.folding)


#: The paper's Table II designs (folding from Table I, LUTs from Table II).
TABLE2_OBSERVATIONS: Tuple[DesignObservation, ...] = (
    DesignObservation(
        name="cnv",
        folding=FoldingConfig(
            pe=(16, 32, 16, 16, 4, 1, 1, 1, 4),
            simd=(3, 32, 32, 32, 32, 32, 4, 8, 1),
        ),
        lut=26_060,
    ),
    DesignObservation(
        name="n-cnv",
        folding=FoldingConfig(
            pe=(16, 16, 16, 16, 4, 1, 1, 1, 1),
            simd=(3, 16, 16, 32, 32, 32, 4, 8, 1),
        ),
        lut=20_425,
    ),
    DesignObservation(
        name="u-cnv",
        folding=FoldingConfig(
            pe=(4, 4, 4, 4, 1, 1, 1),
            simd=(3, 16, 16, 32, 32, 16, 1),
        ),
        lut=11_738,
    ),
)


def solve_lut_coefficients(
    observations: Sequence[DesignObservation] = TABLE2_OBSERVATIONS,
    base_lut: float = 3000.0,
) -> Dict[str, float]:
    """Solve (a, b, c) of the LUT model given a fixed base term.

    With exactly three observations the system is square and solved
    exactly; with more it is solved in the least-squares sense. Returns
    ``{"per_lane": a, "per_pe": b, "per_mvtu": c, "base": base_lut,
    "max_abs_error": e}``.
    """
    if len(observations) < 3:
        raise ValueError(
            f"need at least 3 observations to identify 3 coefficients, "
            f"got {len(observations)}"
        )
    design_matrix = np.array(
        [[o.lane_sum, o.pe_sum, o.n_mvtus] for o in observations], dtype=np.float64
    )
    target = np.array([o.lut - base_lut for o in observations], dtype=np.float64)
    coeffs, *_ = np.linalg.lstsq(design_matrix, target, rcond=None)
    residual = design_matrix @ coeffs - target
    return {
        "per_lane": float(coeffs[0]),
        "per_pe": float(coeffs[1]),
        "per_mvtu": float(coeffs[2]),
        "base": float(base_lut),
        "max_abs_error": float(np.abs(residual).max()),
    }
