"""Precompiled allocation-free inference execution plans.

The FINN execution model compiles a network once into a fixed pipeline
with statically-sized inter-stage buffers; the software datapath in
:meth:`repro.hw.compiler.FinnAccelerator.execute` re-derives that
structure every call — im2col geometry, intermediate allocation, pack
scratch. An :class:`ExecutionPlan` is the software analogue of the
synthesised bitstream: compiled once per (model, folding config, batch
geometry), it

* precomputes and caches the SWU gather-index tables and every stage's
  output shapes,
* binds every intermediate to a persistent
  :class:`~repro.nn.arena.BufferArena` view, so steady-state execution
  performs **zero heap allocations** (``out=``-form kernels end to end;
  verified by :func:`measure_steady_state` and the ``perf``-marked CI
  gate), and
* **fuses** each MVTU→threshold→maxpool chain into one super-stage:
  OR-pooling thresholded bits commutes with thresholding pooled
  accumulators (``OR(acc_i >= t) == max(acc_i) >= t`` for normal
  channels, ``OR(acc_i <= t) == min(acc_i) <= t`` for flipped ones), so
  the plan thresholds at pool resolution — one quarter of the
  thresholding work for 2x2 pools — and the boolean pooling stage
  disappears entirely.

GEMM lowering
-------------

A plan lowers each stage's matrix product one of two ways:

``"blas"`` (chosen by ``"auto"`` whenever exact)
    One float32 ``sgemm`` per stage. Every operand is an integer
    (pixels ≤ 255, weights/activations bipolar ±1) and every partial
    sum is bounded by :func:`blas_exact_bound` — far below ``2**24``,
    the largest range where float32 holds consecutive integers — so
    the float product is **bit-exact**, not approximate. Binary stages
    run directly in the bipolar accumulator domain (``d = 2p - F``)
    with thresholds rebased once at compile time (``p >= t  ⇔  d >=
    2t - F``), and the final logits stage's product *is* the logits.

``"packed"``
    The bit-level XNOR+popcount datapath: word-domain gathers,
    :class:`~repro.hw.bitpack.PackedRowWriter` re-packs, and the
    blocked popcount GEMM — the faithful model of the hardware's
    bit-serial arithmetic, kept fully supported (and exercised by the
    equivalence tests) as the reference lowering.

Both lowerings produce identical logits and identical ``return_bits``
traces; the equivalence is pinned across the zoo by
``tests/test_hw_plan.py``.

Plans are **not** thread-safe (they own their buffers); the
:class:`PlanCache` keys plans by thread identity so concurrent serving
workers each get a private arena. A plan binds the arena's ``epoch`` at
compile time and refuses to run if the arena was cleared underneath it
(the runtime form of the AL003 use-after-reset rule); a stale cached
plan is recompiled on the next lookup, never reused.
"""

from __future__ import annotations

import gc
import threading
import time
import tracemalloc
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.hw.bitpack import WORD_BITS, PackedBits, PackedRowWriter, unpack_bits
from repro.hw.xnor_kernels import gemm_block_rows
from repro.nn.arena import BufferArena

__all__ = [
    "ExecutionPlan",
    "PlanCache",
    "plan_key",
    "plan_unsupported_reason",
    "blas_exact_bound",
    "AllocationReport",
    "measure_steady_state",
]

#: Largest magnitude at which float32 still represents every integer.
_F32_EXACT = 2 ** 24

_F32_ONE = np.float32(1.0)
_F32_TWO = np.float32(2.0)


def plan_key(accelerator, batch_size: int) -> Tuple:
    """The cache identity of a plan: folding vectors + batch geometry.

    Two accelerators with the same architecture but different PE/SIMD
    folding produce different keys (folding is part of the compiled
    identity); so does any change in input shape, class count, or batch
    size.
    """
    folding = accelerator.folding()
    return (
        tuple(accelerator.input_shape),
        int(accelerator.num_classes),
        int(batch_size),
        tuple(folding.pe),
        tuple(folding.simd),
    )


def plan_unsupported_reason(accelerator) -> Optional[str]:
    """Why ``accelerator`` cannot be planned, or ``None`` if it can."""
    stages = accelerator.stages
    if stages[0].kind != "conv" or stages[0].mvtu.config.input_bits != 8:
        return "plan requires a leading 8-bit conv stage"
    for stage in stages[:-1]:
        if stage.mvtu.thresholds is None:
            return f"non-final stage {stage.name!r} has no thresholds"
    if stages[-1].kind != "fc" or stages[-1].mvtu.thresholds is not None:
        return "plan requires a final un-thresholded fc stage"
    return None


def blas_exact_bound(stage) -> int:
    """Largest integer magnitude ``stage``'s GEMM can produce.

    8-bit input stages accumulate at most ``255 * fan_in``; binary
    stages run in the bipolar domain, where ``|2p - F| <= F``. The BLAS
    lowering is exact iff this (and the rebased thresholds) stay below
    ``2**24``.
    """
    cfg = stage.mvtu.config
    if cfg.input_bits == 8:
        from repro.hw.compiler import INPUT_SCALE

        return INPUT_SCALE * cfg.cols
    return cfg.cols


def _blas_thresholds(stage) -> Optional[np.ndarray]:
    """``stage``'s thresholds rebased into its BLAS accumulator domain
    (int64 — cast to float32 by the binder after the exactness check)."""
    spec = stage.mvtu.thresholds
    if spec is None:
        return None
    if stage.mvtu.config.input_bits == 8:
        return spec.thresholds
    # popcount domain: p >= t  <=>  2p - F >= 2t - F
    return 2 * spec.thresholds - stage.mvtu.config.cols


def _resolve_lowering(accelerator, lowering: str) -> str:
    if lowering not in ("auto", "blas", "packed"):
        raise ValueError(
            f"lowering must be 'auto', 'blas' or 'packed', got {lowering!r}"
        )
    if lowering != "auto":
        return lowering
    for stage in accelerator.stages:
        if blas_exact_bound(stage) >= _F32_EXACT:
            return "packed"
        tb = _blas_thresholds(stage)
        if tb is not None and int(np.abs(tb).max()) >= _F32_EXACT:
            return "packed"
    return "blas"


class _PlannedStage:
    """One stage's bound buffers and its allocation-free ``run()``.

    All views, index tables, writers, and constants are bound at plan
    compile time; ``run`` touches only prebuilt objects and ``out=``
    kernels.
    """

    __slots__ = (
        "name", "kind", "mvtu", "cycles", "fused", "arena_bytes",
        "gather_src", "gather_idx", "gather_out",
        "row_writer", "rows_i64", "rows_f32", "w_f32", "a_packed",
        "gemm_scratch", "conv_views", "gemm_tmp",
        "acc", "acc6", "pmax", "pmin",
        "thr", "flip", "notflip", "any_flip",
        "ge", "le", "act", "out_writer", "out_map", "logits_fanin",
        "trace_ref",
    )

    def __init__(self, name: str, kind: str, mvtu) -> None:
        self.name = name
        self.kind = kind
        self.mvtu = mvtu
        self.cycles = 0
        self.fused = False
        self.arena_bytes = 0
        self.gather_src = None
        self.gather_idx = None
        self.gather_out = None
        self.row_writer = None
        self.rows_i64 = None
        self.rows_f32 = None
        self.w_f32 = None
        self.a_packed = None
        self.gemm_scratch = None
        self.conv_views = None
        self.gemm_tmp = None
        self.acc = None
        self.acc6 = None
        self.pmax = None
        self.pmin = None
        self.thr = None
        self.flip = None
        self.notflip = None
        self.any_flip = False
        self.ge = None
        self.le = None
        self.act = None
        self.out_writer = None
        self.out_map = None
        self.logits_fanin = 0
        self.trace_ref = None

    def run(self) -> None:
        if self.gather_src is not None:
            self.gather_src.take(self.gather_idx, axis=1, out=self.gather_out)
        if self.row_writer is not None:
            self.row_writer.pack()
        if self.conv_views is not None:
            # Shifted-matmul convolution: stride-1 windows over a
            # channel-fastest map mean each kernel cell contributes one
            # stacked (out_w, C) @ (C, R) product of a *view* — no
            # im2col gather ever materialises.
            view0, w0 = self.conv_views[0]
            np.matmul(view0, w0, out=self.acc)
            for view, wk in self.conv_views[1:]:
                np.matmul(view, wk, out=self.gemm_tmp)
                np.add(self.acc, self.gemm_tmp, out=self.acc)
        elif self.w_f32 is not None:
            np.matmul(self.rows_f32, self.w_f32, out=self.acc)
        elif self.rows_i64 is not None:
            self.mvtu.compute_accumulators(self.rows_i64, out=self.acc)
        else:
            self.mvtu.compute_accumulators(
                self.a_packed, out=self.acc, scratch=self.gemm_scratch
            )
        if self.thr is None:
            # Final logits stage.
            if self.w_f32 is not None:
                # The bipolar sgemm already computed 2p - F.
                np.copyto(self.out_map, self.acc, casting="unsafe")
            else:
                np.multiply(self.acc, 2, out=self.out_map)
                np.subtract(self.out_map, self.logits_fanin, out=self.out_map)
            return
        # Fused threshold(+pool): pooling accumulators commutes with
        # thresholding (max for >=-channels, min for flipped
        # <=-channels), so the boolean OR-pool stage vanishes.
        if self.acc6 is not None:
            np.maximum.reduce(self.acc6, axis=(2, 4), out=self.pmax)
        np.greater_equal(self.pmax, self.thr, out=self.ge)
        if self.any_flip:
            if self.acc6 is not None:
                np.minimum.reduce(self.acc6, axis=(2, 4), out=self.pmin)
            np.less_equal(self.pmin, self.thr, out=self.le)
            np.logical_and(self.ge, self.notflip, out=self.ge)
            np.logical_and(self.le, self.flip, out=self.le)
            np.logical_or(self.ge, self.le, out=self.ge)
        if self.act is not None:
            # Bipolar ±1 activation map for the next BLAS stage.
            np.multiply(self.ge, _F32_TWO, out=self.act)
            np.subtract(self.act, _F32_ONE, out=self.act)
        if self.out_writer is not None:
            self.out_writer.pack()

    def trace_bits(self) -> np.ndarray:
        """This stage's boolean activation map (or final logits), as a
        fresh array safe to keep across executions (debug mode only —
        this path allocates)."""
        kind, ref = self.trace_ref
        if kind == "packed":
            return unpack_bits(ref, dtype=bool)
        return ref.copy()


class ExecutionPlan:
    """A compiled, arena-bound, fixed-batch inference program.

    Compile once via ``ExecutionPlan(accelerator, batch_size)`` (or let
    :class:`PlanCache` do it); run many times via :meth:`execute`. The
    plan owns (or is bound to) a :class:`~repro.nn.arena.BufferArena`
    holding every intermediate; with ``out=`` supplied, steady-state
    :meth:`execute` performs zero heap allocations. ``lowering`` picks
    the GEMM realisation (see the module docstring); the default
    ``"auto"`` uses the exact-float32 BLAS lowering whenever its
    integer-exactness bound holds and the packed XNOR datapath
    otherwise.
    """

    def __init__(
        self,
        accelerator,
        batch_size: int,
        arena: Optional[BufferArena] = None,
        lowering: str = "auto",
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        reason = plan_unsupported_reason(accelerator)
        if reason is not None:
            raise ValueError(f"{accelerator.name}: {reason}")
        self.accelerator = accelerator
        self.batch_size = int(batch_size)
        self.lowering = _resolve_lowering(accelerator, lowering)
        self.key = plan_key(accelerator, batch_size)
        self._arena = arena if arena is not None else BufferArena()
        self._bind()

    # -- arena lifecycle ------------------------------------------------------
    @property
    def arena(self) -> BufferArena:
        return self._arena

    @property
    def arena_nbytes(self) -> int:
        """Bytes of persistent arena storage this plan binds."""
        return sum(self.stage_arena_bytes.values())

    @property
    def stale(self) -> bool:
        """True when the bound arena was cleared after compilation —
        the plan's views then point at orphaned storage and
        :meth:`execute` refuses to run."""
        return self._arena.epoch != self._bound_epoch

    def set_arena(self, arena: BufferArena) -> None:
        """Rebind every buffer into ``arena`` (e.g. a fresh one after the
        previous arena was cleared)."""
        if arena is None:
            raise ValueError(
                "an execution plan cannot run arena-less; pass a fresh "
                "BufferArena() instead of None"
            )
        self._arena = arena
        self._bind()

    def _get(self, stage: str, role: str, shape, dtype) -> np.ndarray:
        buf = self._arena.get(self, f"{stage}.{role}", shape, dtype)
        self.stage_arena_bytes[stage] = (
            self.stage_arena_bytes.get(stage, 0) + buf.nbytes
        )
        return buf

    # -- compilation ----------------------------------------------------------
    def _bind(self) -> None:
        """(Re)bind every step's buffers and index tables to the arena."""
        from repro.hw.compiler import INPUT_SCALE

        self._bound_epoch = self._arena.epoch
        self.stage_arena_bytes: Dict[str, int] = {}
        n = self.batch_size
        h, w, c = self.accelerator.input_shape
        self._scale = np.float64(INPUT_SCALE)
        self._input_scale = int(INPUT_SCALE)
        self._q_f64 = self._get("input", "quant_f64", (n, h, w, c), np.float64)
        if self.lowering == "blas":
            # Pixels ≤ 255 are exact in float32 — gather and multiply
            # directly in the BLAS operand dtype.
            self._q_num = self._get("input", "quant_f32", (n, h, w, c), np.float32)
        else:
            self._q_num = self._get("input", "quant_i64", (n, h, w, c), np.int64)
        self._q_flat = self._q_num.reshape(n, h * w * c)

        # Inter-stage value, one of:
        #   ("f32", ±1 activation map)      — BLAS lowering
        #   ("packed", words, nbits)        — packed lowering, aligned
        #   ("bool", bit map)               — packed lowering, narrow
        domain = ("int", None)
        steps: List[_PlannedStage] = []
        fused = 0
        for stage in self.accelerator.stages:
            st = _PlannedStage(stage.name, stage.kind, stage.mvtu)
            st.cycles = stage.initiation_interval()
            if stage.kind == "conv":
                if self.lowering == "blas":
                    domain = self._bind_conv_blas(st, stage, domain, n)
                else:
                    domain = self._bind_conv_packed(st, stage, domain, n)
                if stage.pool is not None:
                    st.fused = True
                    fused += 1
            else:
                if self.lowering == "blas":
                    domain = self._bind_fc_blas(st, stage, domain, n)
                else:
                    domain = self._bind_fc_packed(st, stage, domain, n)
            st.arena_bytes = self.stage_arena_bytes.get(stage.name, 0)
            steps.append(st)
        self._stages = steps
        self.fused_stages = fused
        self._logits = steps[-1].out_map

    # -- BLAS lowering --------------------------------------------------------
    def _bind_thresholds_blas(self, st: _PlannedStage, stage) -> None:
        spec = stage.mvtu.thresholds
        tb = _blas_thresholds(stage)
        if int(np.abs(tb).max()) >= _F32_EXACT or (
            blas_exact_bound(stage) >= _F32_EXACT
        ):
            raise ValueError(
                f"{stage.name}: BLAS lowering is not exact for this "
                "geometry; use lowering='packed'"
            )
        st.thr = tb.astype(np.float32)
        st.flip = spec.flipped
        st.notflip = ~spec.flipped
        st.any_flip = bool(spec.flipped.any())

    def _bind_conv_blas(self, st: _PlannedStage, stage, domain, n: int):
        cfg = stage.mvtu.config
        swu = stage.swu
        oh, ow = swu.config.out_hw
        m = n * oh * ow
        rows, cols = cfg.rows, cfg.cols
        name = stage.name
        weights = stage.mvtu.blas_weights()  # (cols, rows), cells × channels
        if cfg.input_bits == 8:
            # im2col via the cached SWU gather table + one big sgemm:
            # the 8-bit fan-in is tiny (K*K*3), so the gathered rows are
            # small and one wide BLAS call beats many skinny ones.
            st.gather_src = self._q_flat
            st.gather_idx = swu.gather_indices()
            gat = self._get(name, "gather", (n, oh * ow * cols), np.float32)
            st.gather_out = gat
            st.rows_f32 = gat.reshape(m, cols)
            st.w_f32 = weights
            st.acc = self._get(name, "acc", (m, rows), np.float32)
            acc4 = st.acc.reshape(n, oh, ow, rows)
        else:
            # Shifted-matmul: one stacked sgemm per kernel cell over a
            # shifted *view* of the previous ±1 activation map — no
            # im2col gather. Weight layout is (kh, kw, C) channels
            # fastest, so cell i's operand is rows [i*C, (i+1)*C).
            act_in = domain[1]
            ch = swu.config.channels
            kh, kw = swu.config.kernel
            st.acc = self._get(name, "acc", (n, oh, ow, rows), np.float32)
            acc4 = st.acc
            st.gemm_tmp = self._get(name, "gemm_tmp", (n, oh, ow, rows), np.float32)
            views = []
            for i in range(kh):
                for j in range(kw):
                    cell = i * kw + j
                    views.append((
                        act_in[:, i : i + oh, j : j + ow, :],
                        weights[cell * ch : (cell + 1) * ch],
                    ))
            st.conv_views = views
        self._bind_thresholds_blas(st, stage)
        if stage.pool is not None:
            ph, pw = stage.pool.config.pool
            out_h, out_w = stage.pool.config.out_hw
            st.acc6 = acc4.reshape(n, out_h, ph, out_w, pw, rows)
            st.pmax = self._get(
                name, "pool_max", (n, out_h, out_w, rows), np.float32
            )
            if st.any_flip:
                st.pmin = self._get(
                    name, "pool_min", (n, out_h, out_w, rows), np.float32
                )
        else:
            out_h, out_w = oh, ow
            st.pmax = acc4
            st.pmin = acc4
        st.ge = self._get(name, "bits", (n, out_h, out_w, rows), bool)
        if st.any_flip:
            st.le = self._get(name, "bits_flip", (n, out_h, out_w, rows), bool)
        st.act = self._get(name, "act", (n, out_h, out_w, rows), np.float32)
        st.trace_ref = ("bool", st.ge)
        return ("f32", st.act)

    def _bind_fc_blas(self, st: _PlannedStage, stage, domain, n: int):
        cfg = stage.mvtu.config
        rows, cols = cfg.rows, cfg.cols
        name = stage.name
        act_in = domain[1]
        d = int(np.prod(act_in.shape[1:]))
        if d != cols:
            raise RuntimeError(f"{name}: fan-in mismatch ({d} != {cols})")
        st.rows_f32 = act_in.reshape(n, cols)
        st.w_f32 = stage.mvtu.blas_weights()
        spec = stage.mvtu.thresholds
        if spec is None:
            st.acc = self._get(name, "acc", (n, rows), np.float32)
            st.out_map = self._get(name, "logits", (n, rows), np.int64)
            st.trace_ref = ("logits", st.out_map)
            return ("logits", st.out_map)
        st.acc = self._get(name, "acc", (n, rows), np.float32)
        self._bind_thresholds_blas(st, stage)
        st.pmax = st.acc
        st.pmin = st.acc
        st.ge = self._get(name, "bits", (n, rows), bool)
        if st.any_flip:
            st.le = self._get(name, "bits_flip", (n, rows), bool)
        st.act = self._get(name, "act", (n, rows), np.float32)
        st.trace_ref = ("bool", st.ge)
        return ("f32", st.act)

    # -- packed lowering ------------------------------------------------------
    def _bind_conv_packed(self, st: _PlannedStage, stage, domain, n: int):
        cfg = stage.mvtu.config
        swu = stage.swu
        oh, ow = swu.config.out_hw
        m = n * oh * ow
        rows, cols = cfg.rows, cfg.cols
        name = stage.name
        # 1. gather (im2col as a cached index take)
        if cfg.input_bits == 8:
            st.gather_src = self._q_flat
            st.gather_idx = swu.gather_indices()
            gat = self._get(name, "gather", (n, oh * ow * cols), np.int64)
            st.gather_out = gat
            st.rows_i64 = gat.reshape(m, cols)
        elif domain[0] == "packed":
            words, nbits = domain[1], domain[2]
            if nbits != swu.config.channels:
                raise RuntimeError(f"{name}: packed fan-in mismatch")
            ww = cols // WORD_BITS
            st.gather_src = words.reshape(n, -1)
            st.gather_idx = swu.gather_word_indices()
            gat = self._get(name, "gather", (n, oh * ow * ww), np.uint64)
            st.gather_out = gat
            st.a_packed = PackedBits(words=gat.reshape(m, ww), nbits=cols)
        else:
            bits = domain[1]
            st.gather_src = bits.view(np.uint8).reshape(n, -1)
            st.gather_idx = swu.gather_indices()
            gat = self._get(name, "gather", (n, oh * ow * cols), np.uint8)
            st.gather_out = gat
            ww = (cols + WORD_BITS - 1) // WORD_BITS
            row_words = self._get(name, "rows_words", (m, ww), np.uint64)
            st.row_writer = PackedRowWriter(
                gat.reshape(m, cols),
                row_words,
                scratch=self._get(
                    name, "pack_scratch", (m, max(cols // 8, 1)), np.uint8
                ),
            )
            st.a_packed = PackedBits(words=row_words, nbits=cols)
        # 2. accumulate
        st.acc = self._get(name, "acc", (m, rows), np.int64)
        if st.a_packed is not None:
            ww_in = st.a_packed.n_words
            bs = min(gemm_block_rows(m, rows, ww_in), m)
            st.gemm_scratch = (
                self._get(name, "gemm_xor", (bs, rows), np.uint64),
                self._get(name, "gemm_cnt", (bs, rows), np.uint8),
            )
        # 3. fused threshold(+pool) + pack
        spec = stage.mvtu.thresholds
        st.thr = spec.thresholds
        st.flip = spec.flipped
        st.notflip = ~spec.flipped
        st.any_flip = bool(spec.flipped.any())
        acc4 = st.acc.reshape(n, oh, ow, rows)
        if stage.pool is not None:
            ph, pw = stage.pool.config.pool
            out_h, out_w = stage.pool.config.out_hw
            st.acc6 = acc4.reshape(n, out_h, ph, out_w, pw, rows)
            st.pmax = self._get(name, "pool_max", (n, out_h, out_w, rows), np.int64)
            if st.any_flip:
                st.pmin = self._get(
                    name, "pool_min", (n, out_h, out_w, rows), np.int64
                )
        else:
            out_h, out_w = oh, ow
            st.pmax = acc4
            st.pmin = acc4
        st.ge = self._get(name, "bits", (n, out_h, out_w, rows), bool)
        if st.any_flip:
            st.le = self._get(name, "bits_flip", (n, out_h, out_w, rows), bool)
        m2 = n * out_h * out_w
        if rows % WORD_BITS == 0:
            rw = rows // WORD_BITS
            out_words = self._get(name, "out_words", (n, out_h, out_w, rw), np.uint64)
            st.out_writer = PackedRowWriter(
                st.ge.reshape(m2, rows),
                out_words.reshape(m2, rw),
                scratch=self._get(
                    name, "out_pack_scratch", (m2, rows // 8), np.uint8
                ),
            )
            st.trace_ref = ("packed", PackedBits(words=out_words, nbits=rows))
            return ("packed", out_words, rows)
        st.trace_ref = ("bool", st.ge)
        return ("bool", st.ge)

    def _bind_fc_packed(self, st: _PlannedStage, stage, domain, n: int):
        cfg = stage.mvtu.config
        rows, cols = cfg.rows, cfg.cols
        name = stage.name
        # 1. input vector: flatten (packed channel-fastest maps ravel to
        # packed raveled bits) or pack a boolean map.
        if domain[0] == "packed":
            words, nbits = domain[1], domain[2]
            logical = (
                int(np.prod(words.shape[1:-1])) * nbits
                if words.ndim > 2
                else nbits
            )
            if logical != cols:
                raise RuntimeError(f"{name}: packed fan-in mismatch")
            st.a_packed = PackedBits(words=words.reshape(n, -1), nbits=cols)
        else:
            bits = domain[1]
            d = int(np.prod(bits.shape[1:]))
            if d != cols:
                raise RuntimeError(f"{name}: boolean fan-in mismatch")
            ww = (cols + WORD_BITS - 1) // WORD_BITS
            vec_words = self._get(name, "vec_words", (n, ww), np.uint64)
            st.row_writer = PackedRowWriter(
                bits.view(np.uint8).reshape(n, cols),
                vec_words,
                scratch=self._get(
                    name, "pack_scratch", (n, max(cols // 8, 1)), np.uint8
                ),
            )
            st.a_packed = PackedBits(words=vec_words, nbits=cols)
        # 2. accumulate
        st.acc = self._get(name, "acc", (n, rows), np.int64)
        bs = min(gemm_block_rows(n, rows, st.a_packed.n_words), n)
        st.gemm_scratch = (
            self._get(name, "gemm_xor", (bs, rows), np.uint64),
            self._get(name, "gemm_cnt", (bs, rows), np.uint8),
        )
        # 3. threshold / logits
        spec = stage.mvtu.thresholds
        if spec is None:
            st.out_map = self._get(name, "logits", (n, rows), np.int64)
            st.logits_fanin = cols
            st.trace_ref = ("logits", st.out_map)
            return ("logits", st.out_map)
        st.thr = spec.thresholds
        st.flip = spec.flipped
        st.notflip = ~spec.flipped
        st.any_flip = bool(spec.flipped.any())
        st.pmax = st.acc
        st.pmin = st.acc
        st.ge = self._get(name, "bits", (n, rows), bool)
        if st.any_flip:
            st.le = self._get(name, "bits_flip", (n, rows), bool)
        if rows % WORD_BITS == 0:
            rw = rows // WORD_BITS
            out_words = self._get(name, "out_words", (n, rw), np.uint64)
            st.out_writer = PackedRowWriter(
                st.ge,
                out_words,
                scratch=self._get(name, "out_pack_scratch", (n, rows // 8), np.uint8),
            )
            st.trace_ref = ("packed", PackedBits(words=out_words, nbits=rows))
            return ("packed", out_words, rows)
        st.trace_ref = ("bool", st.ge)
        return ("bool", st.ge)

    # -- execution ------------------------------------------------------------
    def _quantize(self, images: np.ndarray) -> None:
        """Allocation-free equivalent of ``FinnAccelerator.quantize_input``."""
        if np.issubdtype(images.dtype, np.integer):
            if images.min() < 0 or images.max() > self._input_scale:
                raise ValueError(
                    f"integer input must be in [0, {self._input_scale}]"
                )
            np.copyto(self._q_num, images)
            return
        if images.min() < -1e-6 or images.max() > 1.0 + 1e-6:
            raise ValueError("float input must be in [0, 1]")
        # Multiply by a float64 *scalar* so the product is computed in
        # float64 regardless of the input dtype — identical to the
        # interpreted path's astype(float64) * 255. The rounded result
        # (an integer ≤ 255) is exact in either target dtype.
        np.multiply(images, self._scale, out=self._q_f64)
        np.rint(self._q_f64, out=self._q_f64)
        np.copyto(self._q_num, self._q_f64, casting="unsafe")

    def execute(
        self,
        images: np.ndarray,
        out: Optional[np.ndarray] = None,
        return_bits: bool = False,
        tracer=None,
        parent=None,
        stage_seconds: Optional[list] = None,
    ):
        """Run the planned datapath on one fixed-geometry batch.

        Returns integer logits ``(batch, classes)``. With ``out`` given
        (int64, right shape) the logits are written there and the call
        is allocation-free end to end; without it, a fresh copy of the
        internal logits buffer is returned (the buffer itself is reused
        by the next call and must not escape). ``return_bits``
        additionally returns per-stage boolean traces (debug mode —
        allocates). ``tracer``/``parent`` record per-stage ``hw_stage``
        spans exactly like the interpreted path.
        """
        if self.stale:
            raise RuntimeError(
                f"stale execution plan for {self.accelerator.name!r}: its "
                "arena was cleared after compilation; rebuild the plan or "
                "set_arena() a fresh one"
            )
        images = np.asarray(images)
        if images.ndim == 3:
            images = images[None]
        expected = (self.batch_size,) + tuple(self.accelerator.input_shape)
        if images.shape != expected:
            raise ValueError(
                f"plan compiled for batch {expected}, got {images.shape}"
            )
        self._quantize(images)
        bits_trace = [] if return_bits else None
        for st in self._stages:
            t0 = tracer.clock.monotonic() if tracer is not None else 0.0
            wall0 = time.perf_counter() if stage_seconds is not None else 0.0
            st.run()
            if stage_seconds is not None:
                stage_seconds.append((st.name, time.perf_counter() - wall0))
            if tracer is not None:
                tracer.record(
                    f"hw.{st.name}",
                    kind="hw_stage",
                    start_s=t0,
                    end_s=tracer.clock.monotonic(),
                    parent=parent,
                    attributes={
                        "cycles": st.cycles,
                        "images": self.batch_size,
                        "fused": st.fused,
                        "arena_kib": round(st.arena_bytes / 1024, 3),
                    },
                )
            if return_bits:
                bits_trace.append(st.trace_bits())
        if out is not None:
            if out.shape != self._logits.shape or out.dtype != np.int64:
                raise ValueError(
                    f"out must be int64 {self._logits.shape}, got "
                    f"{out.dtype} {out.shape}"
                )
            np.copyto(out, self._logits)
            result = out
        else:
            result = self._logits.copy()
        if return_bits:
            return result, bits_trace
        return result


class PlanCache:
    """Shape- and thread-keyed LRU cache of compiled execution plans.

    Owned by a :class:`~repro.hw.compiler.FinnAccelerator`; ``predict``
    and the serving backends fetch plans per (batch size, thread), so
    repeated batches reuse a plan across requests while concurrent
    workers never share buffers. Stale plans (arena cleared) are
    recompiled on lookup, never reused.
    """

    def __init__(
        self,
        accelerator,
        capacity: int = 8,
        arena: Optional[BufferArena] = None,
        lowering: str = "auto",
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._accelerator = accelerator
        self._capacity = capacity
        self._arena = arena
        self._lowering = lowering
        self._lock = threading.Lock()
        self._plans: "OrderedDict[Tuple, ExecutionPlan]" = OrderedDict()
        self._hits = 0
        self._misses = 0

    def __deepcopy__(self, memo) -> "PlanCache":
        # Compiled plans are derived state (and the lock is not copyable):
        # a cloned accelerator — e.g. the fault-injection sweep's deepcopy —
        # gets a fresh, empty cache and recompiles lazily on first use.
        import copy as _copy

        accelerator = _copy.deepcopy(self._accelerator, memo)
        clone = PlanCache(
            accelerator, capacity=self._capacity, lowering=self._lowering
        )
        memo[id(self)] = clone
        return clone

    def get(
        self, batch_size: int, lowering: Optional[str] = None
    ) -> Tuple[ExecutionPlan, bool]:
        """(plan, was_cache_hit) for this batch size on this thread.

        ``lowering`` overrides the cache default per lookup; plans with
        different lowerings coexist under distinct keys (``"auto"`` is
        resolved first, so it shares the entry of whichever concrete
        lowering it picks).
        """
        resolved = _resolve_lowering(
            self._accelerator, lowering if lowering is not None
            else self._lowering,
        )
        key = plan_key(self._accelerator, batch_size) + (
            resolved,
            threading.get_ident(),
        )
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None and not plan.stale:
                self._plans.move_to_end(key)
                self._hits += 1
                return plan, True
            self._misses += 1
        plan = ExecutionPlan(  # compiled outside the lock
            self._accelerator, batch_size, arena=self._arena,
            lowering=resolved,
        )
        with self._lock:
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self._capacity:
                self._plans.popitem(last=False)
        return plan, False

    def prewarm(self, batch_sizes, lowering: Optional[str] = None) -> None:
        """Compile a plan per batch size now, so requests never pay one.

        The pool workers call this with their bucket set at startup;
        ``capacity`` must cover the set or the warm plans would evict
        each other (raises rather than silently thrashing).
        """
        sizes = sorted({int(b) for b in batch_sizes})
        if len(sizes) > self._capacity:
            raise ValueError(
                f"cannot prewarm {len(sizes)} batch sizes into a cache of "
                f"capacity {self._capacity}"
            )
        for size in sizes:
            self.get(size, lowering=lowering)

    def stats(self) -> Dict:
        """Cache counters + resident arena footprint."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "plans": len(self._plans),
                "capacity": self._capacity,
                "arena_bytes": sum(
                    p.arena_nbytes for p in self._plans.values()
                ),
            }

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)


# -- steady-state allocation measurement --------------------------------------
@dataclass(frozen=True)
class AllocationReport:
    """Steady-state allocation behaviour of a repeatedly-called function.

    ``net_blocks``/``net_bytes`` are the tracemalloc deltas across the
    first measured window; ``growth_blocks`` is how much the delta grew
    when running ``extra_iters`` *more* iterations. A function that
    allocates per call grows linearly; constant residue (CPython
    freelist repopulation, tracemalloc's own bookkeeping) does not.
    """

    iters: int
    extra_iters: int
    net_blocks: int
    net_bytes: int
    growth_blocks: int
    growth_bytes: int

    @property
    def per_call_blocks(self) -> int:
        """Heap blocks allocated per call in steady state (0 = clean)."""
        if self.growth_blocks <= 0:
            return 0
        return round(self.growth_blocks / self.extra_iters)


def measure_steady_state(fn, iters: int = 10, warmup: int = 6) -> AllocationReport:
    """Measure ``fn``'s steady-state heap behaviour under ``tracemalloc``.

    Protocol (each step matters): warm the function (lazy caches, numpy
    internals), force a GC, then warm again — ``gc.collect`` empties
    CPython's object freelists, so the post-GC calls repopulate them and
    the measured window starts from a true steady state. The report
    compares two windows of different lengths: per-call leaks grow with
    the window, constant residue does not.
    """
    for _ in range(warmup):
        fn()
    gc.collect()
    for _ in range(warmup):
        fn()
    tracemalloc.start()
    try:
        fn()
        fn()
        base = tracemalloc.take_snapshot()
        for _ in range(iters):
            fn()
        mid = tracemalloc.take_snapshot()
        extra = iters * 2
        for _ in range(extra):
            fn()
        end = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    filters = [
        tracemalloc.Filter(False, tracemalloc.__file__),
        tracemalloc.Filter(False, "<unknown>"),
    ]

    def _net(snap0, snap1):
        diff = snap1.filter_traces(filters).compare_to(
            snap0.filter_traces(filters), "filename"
        )
        return (
            sum(d.count_diff for d in diff),
            sum(d.size_diff for d in diff),
        )

    blocks_mid, bytes_mid = _net(base, mid)
    blocks_end, bytes_end = _net(base, end)
    return AllocationReport(
        iters=iters,
        extra_iters=extra,
        net_blocks=blocks_mid,
        net_bytes=bytes_mid,
        growth_blocks=blocks_end - blocks_mid,
        growth_bytes=bytes_end - bytes_mid,
    )
