"""Matrix-Vector-Threshold Unit (MVTU) — the FINN compute engine (§III-B).

One MVTU is instantiated per (binary) convolutional or fully-connected
layer. It multiplies an input vector stream against a weight matrix using
XNOR + popcount and applies the folded batch-norm threshold. The unit is
dimensioned by its **PE count** (output neurons computed in parallel) and
**SIMD lanes** (fan-in elements consumed per cycle); the *folding factor*

    fold = (rows / PE) * (cols / SIMD)

is the number of cycles the unit needs per input vector, which directly
sets its initiation interval in the streaming pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.hw.bitpack import PackedBits, pack_bits, unpack_bits
from repro.hw.thresholding import (
    ThresholdSpec,
    apply_thresholds,
    apply_thresholds_packed,
)
from repro.hw.xnor_kernels import bipolar_from_popcount, xnor_matmul_popcount

__all__ = ["MVTUConfig", "MVTU"]


@dataclass(frozen=True)
class MVTUConfig:
    """Static dimensioning of one MVTU.

    ``rows`` is the number of output neurons (matrix height), ``cols`` the
    fan-in (matrix width). ``input_bits`` is 1 for binary inputs and 8
    for the first layer's fixed-point pixels. ``pe`` must divide ``rows``
    and ``simd`` must divide ``cols`` (the hardware interleaves weights
    across PEs; a non-divisor would leave lanes idle and is rejected the
    way FINN's synthesis would).
    """

    name: str
    rows: int
    cols: int
    pe: int
    simd: int
    input_bits: int = 1
    has_threshold: bool = True

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError(f"{self.name}: matrix dims must be positive")
        if self.pe <= 0 or self.simd <= 0:
            raise ValueError(f"{self.name}: PE and SIMD must be positive")
        if self.rows % self.pe != 0:
            raise ValueError(
                f"{self.name}: PE={self.pe} does not divide rows={self.rows}"
            )
        if self.cols % self.simd != 0:
            raise ValueError(
                f"{self.name}: SIMD={self.simd} does not divide cols={self.cols}"
            )
        if self.input_bits not in (1, 8):
            raise ValueError(
                f"{self.name}: input_bits must be 1 or 8, got {self.input_bits}"
            )

    @property
    def neuron_fold(self) -> int:
        """Row passes needed: rows / PE."""
        return self.rows // self.pe

    @property
    def synapse_fold(self) -> int:
        """Column passes needed: cols / SIMD."""
        return self.cols // self.simd

    @property
    def total_fold(self) -> int:
        """Cycles per input vector."""
        return self.neuron_fold * self.synapse_fold

    @property
    def weight_bits(self) -> int:
        """On-chip weight storage (1 bit per synapse)."""
        return self.rows * self.cols


class MVTU:
    """A functional + timed MVTU instance.

    ``weights`` is the bipolar ``(rows, cols)`` matrix (each row is one
    output neuron, stored packed). ``thresholds`` is ``None`` for the
    final logits layer, which streams out raw accumulators.
    """

    def __init__(
        self,
        config: MVTUConfig,
        weights: np.ndarray,
        thresholds: Optional[ThresholdSpec],
    ) -> None:
        weights = np.asarray(weights)
        if weights.shape != (config.rows, config.cols):
            raise ValueError(
                f"{config.name}: weights {weights.shape} do not match "
                f"matrix {(config.rows, config.cols)}"
            )
        if config.has_threshold != (thresholds is not None):
            raise ValueError(
                f"{config.name}: has_threshold={config.has_threshold} but "
                f"thresholds {'missing' if thresholds is None else 'given'}"
            )
        if thresholds is not None and thresholds.num_channels != config.rows:
            raise ValueError(
                f"{config.name}: {thresholds.num_channels} thresholds for "
                f"{config.rows} rows"
            )
        bad = (weights != 1) & (weights != -1)
        if bad.any():
            raise ValueError(f"{config.name}: weights must be bipolar -1/+1")
        self.config = config
        self.thresholds = thresholds
        self._weight_f32 = None  # lazy BLAS operand (see blas_weights)
        if config.input_bits == 1:
            self._packed_weights = pack_bits(weights.astype(np.int8))
            self._int_weights = None
            # Word-transposed weight operand, precomputed once: the GEMM
            # kernel would otherwise rebuild this contiguous transpose on
            # every call (a per-call allocation + copy on the hot path).
            self._weight_cols = np.ascontiguousarray(
                self._packed_weights.words.T
            )
            self._weight_t64 = None
        else:
            self._packed_weights = None
            self._int_weights = weights.astype(np.int32)
            self._weight_cols = None
            self._weight_t64 = np.ascontiguousarray(
                self._int_weights.astype(np.int64).T
            )

    def blas_weights(self) -> np.ndarray:
        """Cached ``float32 (cols, rows)`` operand for the BLAS-lowered GEMM.

        Execution plans may lower the MVTU's matrix product to a single
        ``sgemm`` when every intermediate fits exactly in float32 (all
        operands and partial sums are integers far below 2**24, so the
        float product is bit-exact — see
        :func:`repro.hw.plan.blas_exact_bound`). Binary weights come out
        bipolar ±1, matching the ``2p - F`` accumulator domain directly.
        """
        if self._weight_f32 is None:
            if self._int_weights is not None:
                src = self._int_weights.astype(np.float32)
            else:
                src = unpack_bits(self._packed_weights, dtype=np.float32)
            self._weight_f32 = np.ascontiguousarray(src.T)
        return self._weight_f32

    # -- functional ------------------------------------------------------------
    def compute_accumulators(
        self, vectors, out: np.ndarray = None, scratch=None
    ) -> np.ndarray:
        """Raw integer accumulators for a batch of input vectors.

        For binary inputs, pass a :class:`PackedBits` of shape
        ``(n, cols)``; the result is the *popcount* accumulator. For 8-bit
        inputs pass an integer array ``(n, cols)``; the result is the raw
        signed MAC.

        ``out`` (``int64 (n, rows)``) and ``scratch`` (the GEMM slab pair,
        see :func:`~repro.hw.xnor_kernels.xnor_matmul_popcount`) make the
        binary path allocation-free; the 8-bit path honours ``out`` when
        the input is already ``int64``. Both weight operands are cached
        contiguous at construction, so no per-call transpose copies.
        """
        cfg = self.config
        if cfg.input_bits == 1:
            if not isinstance(vectors, PackedBits):
                raise TypeError(
                    f"{cfg.name}: binary MVTU expects PackedBits input"
                )
            if vectors.nbits != cfg.cols:
                raise ValueError(
                    f"{cfg.name}: input fan-in {vectors.nbits} != {cfg.cols}"
                )
            return xnor_matmul_popcount(
                vectors,
                self._packed_weights,
                out=out,
                b_cols=self._weight_cols,
                scratch=scratch,
            )
        vec = np.asarray(vectors)
        if vec.ndim != 2 or vec.shape[1] != cfg.cols:
            raise ValueError(
                f"{cfg.name}: expected (n, {cfg.cols}) integer input, got "
                f"{vec.shape}"
            )
        if not np.issubdtype(vec.dtype, np.integer):
            raise TypeError(
                f"{cfg.name}: 8-bit MVTU expects integer input, got {vec.dtype}"
            )
        if out is not None:
            np.matmul(vec.astype(np.int64, copy=False), self._weight_t64, out=out)
            return out
        return vec.astype(np.int64, copy=False) @ self._weight_t64

    def execute(self, vectors, pack_output: bool = False):
        """Full unit: accumulate then threshold.

        Returns boolean output bits ``(n, rows)`` when thresholding, or
        the bipolar/integer accumulators for the final layer. With
        ``pack_output`` the thresholded bits are emitted as
        :class:`PackedBits` (packed along rows) — the packed-domain
        datapath's stage-to-stage currency.
        """
        acc = self.compute_accumulators(vectors)
        if self.thresholds is None:
            if pack_output:
                raise ValueError(
                    f"{self.config.name}: the un-thresholded accumulator "
                    "stream cannot be bit-packed"
                )
            if self.config.input_bits == 1:
                return bipolar_from_popcount(acc, self.config.cols)
            return acc
        if pack_output:
            return apply_thresholds_packed(acc, self.thresholds)
        return apply_thresholds(acc, self.thresholds)

    # -- timing ---------------------------------------------------------------
    def cycles_per_vector(self) -> int:
        """Initiation interval for one input vector."""
        return self.config.total_fold

    def cycles_per_image(self, vectors_per_image: int) -> int:
        """Cycles to process one image's worth of vectors."""
        if vectors_per_image <= 0:
            raise ValueError(
                f"vectors_per_image must be positive, got {vectors_per_image}"
            )
        return vectors_per_image * self.config.total_fold

    def ops_per_image(self, vectors_per_image: int) -> int:
        """Binary MAC operations per image (2 ops per synapse: XNOR+acc)."""
        return 2 * self.config.rows * self.config.cols * vectors_per_image
