"""Design-space exploration over PE/SIMD folding (§IV-B).

"The number of processing elements, SIMD lanes, and other parameters can
be optimized by the designer ... such that all parts of the pipeline have
a matched throughput." This module automates that:

* enumerate legal foldings (divisor constraints) per MVTU;
* balance the pipeline toward a target initiation interval
  (:func:`balance_folding`) — the matched-throughput heuristic;
* sweep a design space and extract the resource/throughput Pareto
  frontier (:func:`pareto_frontier`, :func:`explore`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.hw.compiler import FinnAccelerator, FoldingConfig, compile_model
from repro.hw.devices import Device
from repro.hw.pipeline import analyze_pipeline
from repro.hw.resources import ResourceEstimate, estimate_resources
from repro.nn.sequential import Sequential

__all__ = [
    "DesignPoint",
    "divisors",
    "legal_foldings",
    "balance_folding",
    "pareto_frontier",
    "explore",
    "optimize_for_device",
]


@dataclass
class DesignPoint:
    """One evaluated folding: timing + resources (+ device fit)."""

    folding: FoldingConfig
    fps_analytic: float
    bottleneck: Tuple[str, int]
    lut: float
    bram36: float
    dsp: int
    fits_device: Optional[bool] = None

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance: at least as fast and as small, better somewhere."""
        ge_fast = self.fps_analytic >= other.fps_analytic
        le_small = self.lut <= other.lut
        return ge_fast and le_small and (
            self.fps_analytic > other.fps_analytic or self.lut < other.lut
        )


def divisors(n: int) -> List[int]:
    """Sorted positive divisors of ``n``."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    out = [d for d in range(1, int(np.sqrt(n)) + 1) if n % d == 0]
    return sorted(set(out + [n // d for d in out]))


def legal_foldings(
    rows: int, cols: int, max_pe: int = 64, max_simd: int = 64
) -> List[Tuple[int, int]]:
    """All (PE, SIMD) pairs satisfying the divisor constraints."""
    return [
        (pe, simd)
        for pe in divisors(rows)
        if pe <= max_pe
        for simd in divisors(cols)
        if simd <= max_simd
    ]


def balance_folding(
    model: Sequential,
    target_cycles: int,
    max_pe: int = 64,
    max_simd: int = 64,
) -> FoldingConfig:
    """Matched-throughput folding: cheapest legal folding per layer whose
    MVTU initiation interval meets ``target_cycles``.

    For each MVTU, picks the (PE, SIMD) with the smallest ``PE·SIMD``
    product (proxy for LUT cost) such that
    ``vectors · (rows/PE) · (cols/SIMD) <= target_cycles``; if no legal
    folding reaches the target, the fastest available one is used (the
    layer then *is* the bottleneck, reported by the pipeline analysis).
    """
    if target_cycles <= 0:
        raise ValueError(f"target_cycles must be positive, got {target_cycles}")
    # Compile once at trivial folding to learn matrix dims & vector counts.
    probe = compile_model(model, _unit_folding(model), name="probe")
    pe_list: List[int] = []
    simd_list: List[int] = []
    for stage in probe.stages:
        cfg = stage.mvtu.config
        vectors = stage.vectors_per_image
        best: Optional[Tuple[int, int, int]] = None  # (pe*simd, pe, simd)
        fastest: Optional[Tuple[int, int, int]] = None  # (cycles, pe, simd)
        for pe, simd in legal_foldings(cfg.rows, cfg.cols, max_pe, max_simd):
            cycles = vectors * (cfg.rows // pe) * (cfg.cols // simd)
            if fastest is None or cycles < fastest[0]:
                fastest = (cycles, pe, simd)
            if cycles <= target_cycles:
                cost = pe * simd
                if best is None or cost < best[0]:
                    best = (cost, pe, simd)
        chosen = best or fastest
        assert chosen is not None
        pe_list.append(chosen[1])
        simd_list.append(chosen[2])
    return FoldingConfig(pe=tuple(pe_list), simd=tuple(simd_list))


def _unit_folding(model: Sequential) -> FoldingConfig:
    """PE=SIMD=1 folding (always legal), used for probing layer shapes."""
    from repro.hw.compiler import _iter_blocks

    n = sum(1 for b in _iter_blocks(model) if b[0] in ("conv", "fc", "logits"))
    return FoldingConfig(pe=(1,) * n, simd=(1,) * n)


def pareto_frontier(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Non-dominated subset, sorted by throughput descending."""
    frontier = [
        p
        for p in points
        if not any(q.dominates(p) for q in points if q is not p)
    ]
    return sorted(frontier, key=lambda p: -p.fps_analytic)


def optimize_for_device(
    model: Sequential,
    device: Device,
    clock_mhz: float = 100.0,
    dsp_offload: bool = False,
    min_target: int = 256,
    max_target: int = 4_000_000,
) -> Optional[DesignPoint]:
    """Fastest matched-throughput folding that fits ``device``.

    Binary-searches the target-II axis: smaller targets mean faster but
    larger designs. Matched-throughput cost is monotone in the target,
    so the search converges to the knee; returns ``None`` when even the
    fully-folded (slowest) design does not fit the device.
    """
    if min_target <= 0 or max_target < min_target:
        raise ValueError(
            f"invalid target range [{min_target}, {max_target}]"
        )

    def evaluate(target: int) -> DesignPoint:
        folding = balance_folding(model, target)
        acc = compile_model(model, folding, name=f"fit-{target}")
        timing = analyze_pipeline(acc, clock_mhz)
        res = estimate_resources(acc, dsp_offload=dsp_offload)
        return DesignPoint(
            folding=folding,
            fps_analytic=timing.fps_analytic,
            bottleneck=timing.bottleneck,
            lut=res.lut,
            bram36=res.bram36,
            dsp=res.dsp,
            fits_device=device.fits(res.lut, res.bram36, res.dsp),
        )

    slowest = evaluate(max_target)
    if not slowest.fits_device:
        return None
    fastest = evaluate(min_target)
    if fastest.fits_device:
        return fastest
    lo, hi = min_target, max_target  # lo too big, hi fits
    best = slowest
    while hi > lo + 1:
        mid = (lo + hi) // 2
        point = evaluate(mid)
        if point.fits_device:
            hi = mid
            if point.fps_analytic > best.fps_analytic:
                best = point
        else:
            lo = mid
    return best


def explore(
    model: Sequential,
    target_cycles_grid: Iterable[int],
    clock_mhz: float = 100.0,
    device: Optional[Device] = None,
    dsp_offload: bool = False,
) -> List[DesignPoint]:
    """Sweep matched-throughput designs over a grid of target IIs.

    Each grid entry produces one balanced folding, compiled and costed;
    the caller typically follows with :func:`pareto_frontier`.
    """
    points: List[DesignPoint] = []
    seen = set()
    for target in target_cycles_grid:
        folding = balance_folding(model, target)
        key = (folding.pe, folding.simd)
        if key in seen:
            continue
        seen.add(key)
        acc = compile_model(model, folding, name=f"dse-target-{target}")
        timing = analyze_pipeline(acc, clock_mhz)
        res = estimate_resources(acc, dsp_offload=dsp_offload)
        points.append(
            DesignPoint(
                folding=folding,
                fps_analytic=timing.fps_analytic,
                bottleneck=timing.bottleneck,
                lut=res.lut,
                bram36=res.bram36,
                dsp=res.dsp,
                fits_device=(
                    device.fits(res.lut, res.bram36, res.dsp)
                    if device is not None
                    else None
                ),
            )
        )
    return points
