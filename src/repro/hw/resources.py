"""FPGA resource cost model, calibrated against the paper's Table II.

The model mirrors how FINN's generated RTL consumes resources:

* **LUTs** — each MVTU spends LUTs on its XNOR+popcount lanes
  (``PE × SIMD``), its per-PE accumulate/threshold logic (``PE``) and its
  control FSM/FIFOs (per MVTU), on top of a per-design base
  (DMA, AXI interconnect, input/output width converters)::

      LUT = a·Σ(PE·SIMD) + b·Σ(PE) + c·#MVTU + d

  The coefficients are an exact solve of Table II's three designs
  (a = 4.567 LUT/lane, b = 49.74 LUT/PE, c = 906.5 LUT/unit, d = 3000),
  all individually plausible for XNOR-popcount datapaths.

* **BRAM** — weights are partitioned per PE (each PE streams its own
  rows), so each MVTU maps ``PE`` memories of ``rows·cols/PE`` bits; a
  memory goes to block RAM when it exceeds the LUTRAM threshold
  (1024 bits) and then occupies ``ceil(bits/18432)`` BRAM blocks.
  Against Table II this lands at +13% (CNV), −5% (n-CNV), +7% (µ-CNV);
  the residual is Vivado's packing heuristics, covered by the
  :data:`TABLE2_CALIBRATION` table used when regenerating the paper's
  exact rows.

* **DSPs** — the 8-bit first layer multiplies in DSP slices
  (``ceil(PE·SIMD/2)``, two 8×1-bit MACs per DSP48): exactly 24 for CNV.
  With OrthrusPE-style XNOR offload [27] (µ-CNV on the Z7010), binary
  lanes additionally pack ~15 XNOR-popcount lanes per DSP:
  6 + ceil(305/15) = 27, matching µ-CNV's Table II row. n-CNV's reported
  14 DSPs cannot be produced by any folding-based formula (its first
  layer folding is identical to CNV's, which uses 24); it is carried in
  the calibration table and flagged in reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Dict, List

from repro.hw.compiler import FinnAccelerator

__all__ = [
    "ResourceEstimate",
    "estimate_resources",
    "LUT_PER_LANE",
    "LUT_PER_PE",
    "LUT_PER_MVTU",
    "LUT_BASE",
    "TABLE2_CALIBRATION",
]

# LUT model coefficients (exact solve of Table II, see module docstring).
LUT_PER_LANE = 4.56664629
LUT_PER_PE = 49.73969811
LUT_PER_MVTU = 906.47412331
LUT_BASE = 3000.0

# BRAM model parameters.
LUTRAM_THRESHOLD_BITS = 1024
BRAM_BLOCK_BITS = 18_432

# DSP model parameters.
MACS_PER_DSP_FIRST_LAYER = 2  # two 8-bit x 1-bit MACs per DSP48
XNOR_LANES_PER_DSP = 15  # OrthrusPE-style packing [27]

#: Published Table II values: the calibration targets for the LUT solve
#: and the source of paper-exact rows in the Table II benchmark.
TABLE2_CALIBRATION: Dict[str, Dict[str, float]] = {
    "cnv": {"lut": 26060, "bram": 124, "dsp": 24},
    "n-cnv": {"lut": 20425, "bram": 10.5, "dsp": 14},
    "u-cnv": {"lut": 11738, "bram": 14, "dsp": 27},
}


@dataclass
class ResourceEstimate:
    """Resource requirements of one compiled accelerator."""

    lut: float
    bram36: float
    dsp: int
    per_stage_lut: List[float]
    per_stage_bram: List[float]
    weight_bits: int
    dsp_offload: bool

    def report(self) -> str:
        return (
            f"LUT={self.lut:,.0f}  BRAM={self.bram36:.1f}  DSP={self.dsp}  "
            f"weights={self.weight_bits / 8192:.1f} KiB"
            + ("  [XNOR->DSP offload]" if self.dsp_offload else "")
        )


def _stage_lut(pe: int, simd: int) -> float:
    """LUT cost of one MVTU (lanes + per-PE logic + control)."""
    return LUT_PER_LANE * pe * simd + LUT_PER_PE * pe + LUT_PER_MVTU


def _stage_bram(rows: int, cols: int, pe: int) -> int:
    """Block-RAM count for one MVTU's per-PE-partitioned weight memory."""
    bits_per_pe = rows * cols / pe
    if bits_per_pe <= LUTRAM_THRESHOLD_BITS:
        return 0
    return pe * ceil(bits_per_pe / BRAM_BLOCK_BITS)


def estimate_resources(
    accelerator: FinnAccelerator, dsp_offload: bool = False
) -> ResourceEstimate:
    """Estimate LUT/BRAM/DSP for a compiled accelerator.

    ``dsp_offload`` models OrthrusPE [27]: binary XNOR lanes are packed
    into DSP48 slices in addition to the LUT fabric — the runtime-
    reconfigurable mode that lets µ-CNV target the Z7010 (the LUT total
    fitted on Table II already corresponds to this published
    configuration for µ-CNV, so only the DSP count changes here).
    """
    per_stage_lut: List[float] = []
    per_stage_bram: List[float] = []
    dsp = 0
    offloaded_lanes = 0
    for stage in accelerator.stages:
        cfg = stage.mvtu.config
        lanes = cfg.pe * cfg.simd
        if cfg.input_bits == 8:
            dsp += ceil(lanes / MACS_PER_DSP_FIRST_LAYER)
        elif dsp_offload:
            offloaded_lanes += lanes
        per_stage_lut.append(_stage_lut(cfg.pe, cfg.simd))
        per_stage_bram.append(_stage_bram(cfg.rows, cfg.cols, cfg.pe))
    if dsp_offload and offloaded_lanes:
        dsp += ceil(offloaded_lanes / XNOR_LANES_PER_DSP)
    return ResourceEstimate(
        lut=LUT_BASE + float(sum(per_stage_lut)),
        bram36=float(sum(per_stage_bram)),
        dsp=int(dsp),
        per_stage_lut=per_stage_lut,
        per_stage_bram=per_stage_bram,
        weight_bits=accelerator.weight_bits(),
        dsp_offload=bool(dsp_offload),
    )
