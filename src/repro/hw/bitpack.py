"""Bit-packing of binary ``{-1, +1}`` tensors into uint64 words.

The hardware convention (§III-A) is that ``-1`` is expressed as bit 0 and
``+1`` as bit 1, so a multiply becomes XNOR. Packing is along the last
axis; a tensor ``(..., C)`` becomes ``(..., ceil(C/64))`` of ``uint64``
plus the true bit length. This is the genuine ×32 (here ×64 per word)
memory-footprint reduction the paper claims for BNN parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["PackedBits", "pack_bits", "unpack_bits", "popcount", "WORD_BITS"]

WORD_BITS = 64


@dataclass(frozen=True)
class PackedBits:
    """A bit-packed binary tensor.

    ``words`` has shape ``original_shape[:-1] + (n_words,)``; ``nbits`` is
    the length of the original last axis. Bits beyond ``nbits`` in the
    final word are guaranteed zero (kernels rely on this).
    """

    words: np.ndarray
    nbits: int

    def __post_init__(self) -> None:
        if self.words.dtype != np.uint64:
            raise TypeError(f"words must be uint64, got {self.words.dtype}")
        if self.nbits <= 0:
            raise ValueError(f"nbits must be positive, got {self.nbits}")
        expected = (self.nbits + WORD_BITS - 1) // WORD_BITS
        if self.words.shape[-1] != expected:
            raise ValueError(
                f"last axis has {self.words.shape[-1]} words, expected "
                f"{expected} for {self.nbits} bits"
            )

    @property
    def n_words(self) -> int:
        return self.words.shape[-1]

    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the logical (unpacked) tensor."""
        return self.words.shape[:-1] + (self.nbits,)

    def nbytes(self) -> int:
        """Storage footprint in bytes."""
        return int(self.words.nbytes)


def _tail_mask(nbits: int) -> np.uint64:
    """Mask of valid bits in the final word."""
    rem = nbits % WORD_BITS
    if rem == 0:
        return np.uint64(0xFFFFFFFFFFFFFFFF)
    return np.uint64((1 << rem) - 1)


def pack_bits(x: np.ndarray) -> PackedBits:
    """Pack a ``{-1, +1}`` (or boolean) tensor along its last axis.

    ``+1``/``True`` maps to bit 1; ``-1``/``False``/``0`` to bit 0. Values
    other than these raise ``ValueError`` (a silent mis-pack would corrupt
    every downstream popcount).
    """
    x = np.asarray(x)
    if x.ndim == 0:
        raise ValueError("cannot pack a scalar")
    if x.dtype == bool:
        bits = x
    else:
        valid = (x == 1) | (x == -1)
        if not valid.all():
            bad = x[~valid].ravel()[0]
            raise ValueError(f"input must be -1/+1 or boolean, found {bad!r}")
        bits = x > 0
    nbits = x.shape[-1]
    n_words = (nbits + WORD_BITS - 1) // WORD_BITS
    padded = np.zeros(x.shape[:-1] + (n_words * WORD_BITS,), dtype=bool)
    padded[..., :nbits] = bits
    # (…, n_words, 64) -> weighted sum over bit positions.
    grouped = padded.reshape(x.shape[:-1] + (n_words, WORD_BITS))
    weights = (np.uint64(1) << np.arange(WORD_BITS, dtype=np.uint64))
    words = (grouped.astype(np.uint64) * weights).sum(axis=-1, dtype=np.uint64)
    return PackedBits(words=words, nbits=nbits)


def unpack_bits(packed: PackedBits, dtype=np.float32) -> np.ndarray:
    """Inverse of :func:`pack_bits`: returns a ``{-1, +1}`` tensor.

    With ``dtype=bool`` returns the raw bit values instead.
    """
    words = packed.words
    shifts = np.arange(WORD_BITS, dtype=np.uint64)
    bits = (words[..., None] >> shifts) & np.uint64(1)
    flat = bits.reshape(words.shape[:-1] + (words.shape[-1] * WORD_BITS,))
    flat = flat[..., : packed.nbits].astype(bool)
    if dtype == bool or dtype is bool:
        return flat
    out = np.where(flat, 1.0, -1.0).astype(dtype)
    return out


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-element population count of a uint64 array (int64 result)."""
    if words.dtype != np.uint64:
        raise TypeError(f"popcount expects uint64, got {words.dtype}")
    return np.bitwise_count(words).astype(np.int64)
