"""Bit-packing of binary ``{-1, +1}`` tensors into uint64 words.

The hardware convention (§III-A) is that ``-1`` is expressed as bit 0 and
``+1`` as bit 1, so a multiply becomes XNOR. Packing is along the last
axis; a tensor ``(..., C)`` becomes ``(..., ceil(C/64))`` of ``uint64``
plus the true bit length. This is the genuine ×32 (here ×64 per word)
memory-footprint reduction the paper claims for BNN parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = [
    "PackedBits",
    "PackedRowWriter",
    "pack_bits",
    "unpack_bits",
    "popcount",
    "WORD_BITS",
]

WORD_BITS = 64


@dataclass(frozen=True)
class PackedBits:
    """A bit-packed binary tensor.

    ``words`` has shape ``original_shape[:-1] + (n_words,)``; ``nbits`` is
    the length of the original last axis. Bits beyond ``nbits`` in the
    final word are guaranteed zero (kernels rely on this).
    """

    words: np.ndarray
    nbits: int

    def __post_init__(self) -> None:
        if self.words.dtype != np.uint64:
            raise TypeError(f"words must be uint64, got {self.words.dtype}")
        if self.nbits <= 0:
            raise ValueError(f"nbits must be positive, got {self.nbits}")
        expected = (self.nbits + WORD_BITS - 1) // WORD_BITS
        if self.words.shape[-1] != expected:
            raise ValueError(
                f"last axis has {self.words.shape[-1]} words, expected "
                f"{expected} for {self.nbits} bits"
            )

    @property
    def n_words(self) -> int:
        return self.words.shape[-1]

    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the logical (unpacked) tensor."""
        return self.words.shape[:-1] + (self.nbits,)

    def nbytes(self) -> int:
        """Storage footprint in bytes."""
        return int(self.words.nbytes)


def pack_bits(x: np.ndarray) -> PackedBits:
    """Pack a ``{-1, +1}`` (or boolean) tensor along its last axis.

    ``+1``/``True`` maps to bit 1; ``-1``/``False``/``0`` to bit 0. Values
    other than these raise ``ValueError`` (a silent mis-pack would corrupt
    every downstream popcount).

    Implemented on ``np.packbits`` in little-endian bit order, with the
    resulting byte stream viewed as little-endian uint64 words: byte
    ``j``'s bit ``i`` is logical bit ``8*j + i``, so eight consecutive
    bytes read as one ``<u8`` word place logical bit ``64*w + k`` at word
    bit ``k`` — the same layout the previous weighted-sum implementation
    produced, without materialising a ``(…, n_words, 64)`` uint64
    intermediate (the ×64 memory blow-up that dominated the hot loop).
    """
    x = np.asarray(x)
    if x.ndim == 0:
        raise ValueError("cannot pack a scalar")
    if x.dtype == bool:
        bits = x
    else:
        valid = (x == 1) | (x == -1)
        if not valid.all():
            bad = x[~valid].ravel()[0]
            raise ValueError(f"input must be -1/+1 or boolean, found {bad!r}")
        bits = x > 0
    nbits = x.shape[-1]
    n_words = (nbits + WORD_BITS - 1) // WORD_BITS
    packed_bytes = np.packbits(bits, axis=-1, bitorder="little")
    # Pad the byte axis to a whole number of words (packbits already
    # zero-fills the slack bits inside the final byte).
    pad = n_words * 8 - packed_bytes.shape[-1]
    if pad:
        packed_bytes = np.concatenate(
            [
                packed_bytes,
                np.zeros(packed_bytes.shape[:-1] + (pad,), dtype=np.uint8),
            ],
            axis=-1,
        )
    words = (
        np.ascontiguousarray(packed_bytes)
        .view(np.dtype("<u8"))
        .astype(np.uint64, copy=False)
    )
    return PackedBits(words=words, nbits=nbits)


def unpack_bits(packed: PackedBits, dtype=np.float32) -> np.ndarray:
    """Inverse of :func:`pack_bits`: returns a ``{-1, +1}`` tensor.

    With ``dtype=bool`` returns the raw bit values instead.
    """
    words = packed.words
    packed_bytes = (
        np.ascontiguousarray(words).astype("<u8", copy=False).view(np.uint8)
    )
    bits8 = np.unpackbits(
        packed_bytes, axis=-1, count=packed.nbits, bitorder="little"
    )
    if dtype == bool or dtype is bool:
        return bits8.astype(bool)
    # 0/1 -> -1/+1 in the narrow 1-byte domain first (in place on the
    # fresh unpack buffer), then a single widening cast to the target
    # dtype. Mapping after the cast costs two extra full-width passes
    # over the 4-byte output — measured ~1.6x slower for float32. The
    # uint8 arithmetic wraps 0-1 to 255, whose int8 reinterpretation is
    # exactly the -1 we want. The remaining pack/unpack gap is inherent:
    # unpacking expands every stored bit to a 32-bit lane (32x the
    # memory traffic of the packed words), while packing only writes
    # bits.
    bits8 += bits8
    bits8 -= 1
    return bits8.view(np.int8).astype(dtype, copy=False)


class PackedRowWriter:
    """Allocation-free re-runnable pack of a fixed ``(m, nbits)`` bit matrix.

    Binds once to a source bit matrix (``bool``/``uint8`` 0-or-1 values,
    C-contiguous rows) and a destination ``uint64`` word matrix
    ``(m, ceil(nbits/64))``, then :meth:`pack` re-encodes the current
    source contents into the destination with zero heap allocations —
    the steady-state form of :func:`pack_bits` the inference execution
    plans (:mod:`repro.hw.plan`) run every batch.

    Layout is identical to :func:`pack_bits` (little-endian bit order,
    ``<u8`` word view): destination byte ``j`` holds logical bits
    ``8j .. 8j+7``, built from eight shifted byte planes. Slack bytes
    past ``nbits`` are zeroed at bind time and never rewritten, so the
    :class:`PackedBits` zero-padding invariant holds after every pack.
    """

    def __init__(
        self, bits: np.ndarray, out_words: np.ndarray, scratch=None
    ) -> None:
        if bits.ndim != 2:
            raise ValueError(f"bits must be 2-D, got {bits.shape}")
        if bits.dtype == bool:
            bits = bits.view(np.uint8)
        if bits.dtype != np.uint8:
            raise TypeError(f"bits must be bool/uint8, got {bits.dtype}")
        if not bits.flags.c_contiguous:
            raise ValueError("bits must be C-contiguous")
        m, nbits = bits.shape
        n_words = (nbits + WORD_BITS - 1) // WORD_BITS
        if out_words.dtype != np.uint64 or out_words.shape != (m, n_words):
            raise ValueError(
                f"out_words must be uint64 {(m, n_words)}, got "
                f"{out_words.dtype} {out_words.shape}"
            )
        if not out_words.flags.c_contiguous:
            raise ValueError("out_words must be C-contiguous")
        if not np.little_endian:  # pragma: no cover - exotic hosts only
            raise RuntimeError(
                "PackedRowWriter's raw byte view requires a little-endian "
                "host; use pack_bits instead"
            )
        self.nbits = nbits
        self.words = out_words
        nb_full = nbits // 8
        rem = nbits - nb_full * 8
        if scratch is None:
            scratch = np.empty((m, max(nb_full, 1)), dtype=np.uint8)
        if scratch.shape[0] != m or scratch.shape[1] < max(nb_full, 1) or (
            scratch.dtype != np.uint8
        ):
            raise ValueError(
                f"scratch must be uint8 ({m}, >={max(nb_full, 1)}), got "
                f"{scratch.dtype} {scratch.shape}"
            )
        out_bytes = out_words.view(np.uint8)  # (m, n_words * 8), little-endian
        out_bytes[:, nb_full + (1 if rem else 0):] = 0  # slack: zero once
        self._dst = out_bytes[:, :nb_full]
        self._planes = [
            bits[:, :nb_full * 8].reshape(m, nb_full, 8)[:, :, i]
            for i in range(8)
        ] if nb_full else []
        self._scratch = scratch[:, :nb_full] if nb_full else None
        if rem:
            self._tail_dst = out_bytes[:, nb_full]
            self._tail_cols = [bits[:, nb_full * 8 + i] for i in range(rem)]
            self._tail_scratch = scratch[:, 0]
        else:
            self._tail_dst = None
            self._tail_cols = []
            self._tail_scratch = None

    def pack(self) -> np.ndarray:
        """Re-encode the bound bits into the bound words; returns words."""
        if self._planes:
            np.copyto(self._dst, self._planes[0])
            for i in range(1, 8):
                np.left_shift(self._planes[i], i, out=self._scratch)
                np.bitwise_or(self._dst, self._scratch, out=self._dst)
        if self._tail_dst is not None:
            np.copyto(self._tail_dst, self._tail_cols[0])
            for i in range(1, len(self._tail_cols)):
                np.left_shift(self._tail_cols[i], i, out=self._tail_scratch)
                np.bitwise_or(
                    self._tail_dst, self._tail_scratch, out=self._tail_dst
                )
        return self.words


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-element population count of a uint64 array (int64 result)."""
    if words.dtype != np.uint64:
        raise TypeError(f"popcount expects uint64, got {words.dtype}")
    return np.bitwise_count(words).astype(np.int64)
