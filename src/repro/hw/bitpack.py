"""Bit-packing of binary ``{-1, +1}`` tensors into uint64 words.

The hardware convention (§III-A) is that ``-1`` is expressed as bit 0 and
``+1`` as bit 1, so a multiply becomes XNOR. Packing is along the last
axis; a tensor ``(..., C)`` becomes ``(..., ceil(C/64))`` of ``uint64``
plus the true bit length. This is the genuine ×32 (here ×64 per word)
memory-footprint reduction the paper claims for BNN parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["PackedBits", "pack_bits", "unpack_bits", "popcount", "WORD_BITS"]

WORD_BITS = 64


@dataclass(frozen=True)
class PackedBits:
    """A bit-packed binary tensor.

    ``words`` has shape ``original_shape[:-1] + (n_words,)``; ``nbits`` is
    the length of the original last axis. Bits beyond ``nbits`` in the
    final word are guaranteed zero (kernels rely on this).
    """

    words: np.ndarray
    nbits: int

    def __post_init__(self) -> None:
        if self.words.dtype != np.uint64:
            raise TypeError(f"words must be uint64, got {self.words.dtype}")
        if self.nbits <= 0:
            raise ValueError(f"nbits must be positive, got {self.nbits}")
        expected = (self.nbits + WORD_BITS - 1) // WORD_BITS
        if self.words.shape[-1] != expected:
            raise ValueError(
                f"last axis has {self.words.shape[-1]} words, expected "
                f"{expected} for {self.nbits} bits"
            )

    @property
    def n_words(self) -> int:
        return self.words.shape[-1]

    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the logical (unpacked) tensor."""
        return self.words.shape[:-1] + (self.nbits,)

    def nbytes(self) -> int:
        """Storage footprint in bytes."""
        return int(self.words.nbytes)


def pack_bits(x: np.ndarray) -> PackedBits:
    """Pack a ``{-1, +1}`` (or boolean) tensor along its last axis.

    ``+1``/``True`` maps to bit 1; ``-1``/``False``/``0`` to bit 0. Values
    other than these raise ``ValueError`` (a silent mis-pack would corrupt
    every downstream popcount).

    Implemented on ``np.packbits`` in little-endian bit order, with the
    resulting byte stream viewed as little-endian uint64 words: byte
    ``j``'s bit ``i`` is logical bit ``8*j + i``, so eight consecutive
    bytes read as one ``<u8`` word place logical bit ``64*w + k`` at word
    bit ``k`` — the same layout the previous weighted-sum implementation
    produced, without materialising a ``(…, n_words, 64)`` uint64
    intermediate (the ×64 memory blow-up that dominated the hot loop).
    """
    x = np.asarray(x)
    if x.ndim == 0:
        raise ValueError("cannot pack a scalar")
    if x.dtype == bool:
        bits = x
    else:
        valid = (x == 1) | (x == -1)
        if not valid.all():
            bad = x[~valid].ravel()[0]
            raise ValueError(f"input must be -1/+1 or boolean, found {bad!r}")
        bits = x > 0
    nbits = x.shape[-1]
    n_words = (nbits + WORD_BITS - 1) // WORD_BITS
    packed_bytes = np.packbits(bits, axis=-1, bitorder="little")
    # Pad the byte axis to a whole number of words (packbits already
    # zero-fills the slack bits inside the final byte).
    pad = n_words * 8 - packed_bytes.shape[-1]
    if pad:
        packed_bytes = np.concatenate(
            [
                packed_bytes,
                np.zeros(packed_bytes.shape[:-1] + (pad,), dtype=np.uint8),
            ],
            axis=-1,
        )
    words = (
        np.ascontiguousarray(packed_bytes)
        .view(np.dtype("<u8"))
        .astype(np.uint64, copy=False)
    )
    return PackedBits(words=words, nbits=nbits)


def unpack_bits(packed: PackedBits, dtype=np.float32) -> np.ndarray:
    """Inverse of :func:`pack_bits`: returns a ``{-1, +1}`` tensor.

    With ``dtype=bool`` returns the raw bit values instead.
    """
    words = packed.words
    packed_bytes = (
        np.ascontiguousarray(words).astype("<u8", copy=False).view(np.uint8)
    )
    bits8 = np.unpackbits(
        packed_bytes, axis=-1, count=packed.nbits, bitorder="little"
    )
    if dtype == bool or dtype is bool:
        return bits8.astype(bool)
    # 0/1 -> -1/+1 computed in the target dtype (a np.where with python
    # scalars would silently broadcast through float64).
    out = bits8.astype(dtype)
    out *= 2
    out -= 1
    return out


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-element population count of a uint64 array (int64 result)."""
    if words.dtype != np.uint64:
        raise TypeError(f"popcount expects uint64, got {words.dtype}")
    return np.bitwise_count(words).astype(np.int64)
