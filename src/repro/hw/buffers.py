"""On-chip activation buffering: SWU line buffers and inter-stage FIFOs.

The streaming pipeline of §III-B keeps *all* intermediate activations on
chip. Two kinds of storage make that possible:

* **line buffers** inside each sliding-window unit — a KxK window over a
  raster-scanned map needs the last ``K-1`` full rows plus ``K`` pixels
  resident (the classical line-buffer bound);
* **inter-stage FIFOs** that decouple a producer finishing its image
  early from a consumer still draining the previous one. A FIFO deep
  enough to hold one output *row* of the producer absorbs the rate
  mismatch within a line; the depth is scaled up when the consumer is
  slower (back-pressure accumulates proportionally to the II ratio).

This module sizes both from a compiled accelerator and reports the
storage bill in bits/BRAMs — the part of the on-chip memory budget that
Table II's weight-centric model leaves implicit. Its software twin is
:func:`render_arena_bill`, which itemises the persistent simulator-side
arena an :class:`~repro.hw.plan.ExecutionPlan` binds per stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import List, Optional

from repro.hw.compiler import FinnAccelerator

__all__ = [
    "BufferPlan",
    "StageBuffer",
    "plan_buffers",
    "render_arena_bill",
    "render_pool_bill",
]

#: One 18 Kb block RAM, the granularity buffers map to.
BRAM_BLOCK_BITS = 18_432

#: Buffers below this size stay in LUTRAM/registers.
LUTRAM_THRESHOLD_BITS = 1_024


@dataclass(frozen=True)
class StageBuffer:
    """Buffer bill for one pipeline stage."""

    stage: str
    line_buffer_bits: int
    fifo_bits: int
    fifo_depth_words: int
    word_bits: int

    @property
    def total_bits(self) -> int:
        return self.line_buffer_bits + self.fifo_bits

    def bram_blocks(self) -> int:
        """18Kb BRAMs consumed (0 when the buffer fits LUTRAM)."""
        blocks = 0
        for bits in (self.line_buffer_bits, self.fifo_bits):
            if bits > LUTRAM_THRESHOLD_BITS:
                blocks += ceil(bits / BRAM_BLOCK_BITS)
        return blocks


@dataclass
class BufferPlan:
    """The accelerator-wide activation-buffer bill."""

    buffers: List[StageBuffer]

    def total_bits(self) -> int:
        return sum(b.total_bits for b in self.buffers)

    def total_bram_blocks(self) -> int:
        return sum(b.bram_blocks() for b in self.buffers)

    def report(self) -> str:
        lines = ["activation buffers (line buffers + inter-stage FIFOs):"]
        for b in self.buffers:
            lines.append(
                f"  {b.stage:<12s} line={b.line_buffer_bits:>8d} b  "
                f"fifo={b.fifo_bits:>8d} b ({b.fifo_depth_words} x "
                f"{b.word_bits} b)  -> {b.bram_blocks()} BRAM18"
            )
        lines.append(
            f"  total: {self.total_bits():,} bits "
            f"({self.total_bits() / 8192:.1f} KiB), "
            f"{self.total_bram_blocks()} BRAM18 blocks"
        )
        return "\n".join(lines)


def render_arena_bill(plan) -> str:
    """Itemised persistent-arena footprint of one execution plan.

    The hardware bill (:meth:`BufferPlan.report`) sizes on-chip line
    buffers and FIFOs; this renders the simulator-side equivalent — the
    :class:`~repro.nn.arena.BufferArena` bytes each planned stage binds
    once at compile time (``ExecutionPlan.stage_arena_bytes``), i.e. the
    fixed working set of the allocation-free inference path.
    """
    total = sum(plan.stage_arena_bytes.values())
    lines = [
        f"inference arena ({plan.accelerator.name}, "
        f"batch {plan.batch_size}, {plan.lowering} lowering):"
    ]
    for stage, nbytes in plan.stage_arena_bytes.items():
        share = nbytes / total if total else 0.0
        lines.append(
            f"  {stage:<12s} {nbytes / 1024:>10.1f} KiB  ({share:6.1%})"
        )
    lines.append(
        f"  total: {total / 1024:,.1f} KiB persistent across calls"
    )
    return "\n".join(lines)


def render_pool_bill(pool_stats: dict) -> str:
    """Per-worker shared-arena occupancy of a process pool.

    Takes the dict :meth:`~repro.parallel.ProcessPool.plan_stats`
    returns and itemises each worker's shared-memory arena: bytes carved
    for plan buffers vs. segment capacity, plus any heap *overflow* (a
    non-zero overflow means the arena was undersized and that worker is
    silently allocating — the number to watch on a dashboard).
    """
    workers = pool_stats.get("workers", {})
    lines = ["process-pool shared arenas (per worker):"]
    for wid in sorted(workers):
        w = workers[wid]
        carved = w.get("arena_carved_bytes", 0)
        cap = w.get("arena_capacity", 0)
        overflow = w.get("arena_overflow_bytes", 0)
        share = carved / cap if cap else 0.0
        line = (
            f"  worker {wid} (pid {w.get('worker_pid', '?')}): "
            f"{carved / 1024:>10.1f} / {cap / 1024:,.1f} KiB carved "
            f"({share:6.1%}), {w.get('plans', 0)} plans, "
            f"{w.get('tasks', 0)} tasks"
        )
        if overflow:
            line += f"  [OVERFLOW {overflow / 1024:,.1f} KiB on heap]"
        lines.append(line)
    total = pool_stats.get("total", {})
    pool = pool_stats.get("pool", {})
    lines.append(
        f"  total: {total.get('plans', 0)} plans, "
        f"{total.get('hits', 0)} hits / {total.get('misses', 0)} misses, "
        f"{pool.get('worker_restarts', 0)} worker restarts"
    )
    return "\n".join(lines)


def plan_buffers(accelerator: FinnAccelerator) -> BufferPlan:
    """Size line buffers and FIFOs for every stage of ``accelerator``.

    The FIFO between stage ``l`` and ``l+1`` holds stage ``l``'s output
    words; its depth is one output row of the producer, multiplied by the
    consumer/producer initiation-interval ratio when the consumer is the
    slower side (it then backs up by that factor before the pipeline
    steady-state absorbs it). Depth is floored at 2 (ping-pong minimum).
    """
    buffers: List[StageBuffer] = []
    stages = accelerator.stages
    for idx, stage in enumerate(stages):
        cfg = stage.mvtu.config
        # -- line buffer (conv stages only) --------------------------------
        if stage.swu is not None:
            swu = stage.swu.config
            kh, kw = swu.kernel
            h, w = swu.in_hw
            pixels_resident = (kh - 1) * w + kw
            bits_per_pixel = swu.channels * (8 if cfg.input_bits == 8 else 1)
            line_bits = pixels_resident * bits_per_pixel
        else:
            line_bits = 0
        # -- inter-stage FIFO (towards the next stage) ----------------------
        if idx + 1 < len(stages):
            out_bits_per_word = cfg.rows  # one output pixel/vector, 1b each
            if stage.kind == "conv":
                out_w = (
                    stage.pool.config.out_hw[1]
                    if stage.pool is not None
                    else stage.swu.config.out_hw[1]
                )
                depth = out_w
            else:
                depth = 1
            ii_producer = stage.initiation_interval()
            ii_consumer = stages[idx + 1].initiation_interval()
            if ii_consumer > ii_producer:
                depth = ceil(depth * ii_consumer / ii_producer)
            depth = max(2, depth)
            fifo_bits = depth * out_bits_per_word
        else:
            depth = 0
            out_bits_per_word = cfg.rows
            fifo_bits = 0
        buffers.append(
            StageBuffer(
                stage=stage.name,
                line_buffer_bits=int(line_bits),
                fifo_bits=int(fifo_bits),
                fifo_depth_words=int(depth),
                word_bits=int(out_bits_per_word),
            )
        )
    return BufferPlan(buffers=buffers)
