"""Pluggable inference backends behind one protocol.

A backend is anything that turns a stacked image batch into class
labels. The worker pool treats backends as an ordered list — the first
is primary, the rest are fallbacks — and respects each backend's
``max_concurrency`` (how many micro-batches may run on it at once).

Two concrete backends ship:

* :class:`ClassifierBackend` — the numpy float path of
  :class:`~repro.core.classifier.BinaryCoP` (chunked prediction keeps
  memory bounded for coalesced batches);
* :class:`AcceleratorBackend` — the bit-packed XNOR integer datapath of
  a compiled :class:`~repro.hw.compiler.FinnAccelerator`, which also
  reports the *hardware-modelled* batch time from the pipeline cycle
  model so serving stats can be read against board-like rates.

Concurrency limits derive from the Table I folding dimensioning via
:func:`folding_concurrency`.
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

import numpy as np

from repro.hw.compiler import FinnAccelerator, FoldingConfig
from repro.hw.pipeline import analyze_pipeline

__all__ = [
    "InferenceBackend",
    "ClassifierBackend",
    "AcceleratorBackend",
    "ProcessPoolBackend",
    "folding_concurrency",
]


@runtime_checkable
class InferenceBackend(Protocol):
    """What the worker pool requires of a backend."""

    name: str
    max_concurrency: int

    def infer(self, images: np.ndarray) -> np.ndarray:
        """Class labels ``(N,)`` for a stacked image batch ``(N, H, W, C)``."""
        ...


def folding_concurrency(folding: FoldingConfig, cap: int = 4) -> int:
    """Worker concurrency implied by a Table I folding dimensioning.

    A folding with ``D`` MVTUs describes a ``D``-deep streaming pipeline
    — up to ``D`` images genuinely in flight on the board. The software
    simulator cannot pipeline stages across threads (they contend for
    the same BLAS/popcount kernels instead), so we admit roughly one
    concurrent micro-batch per three pipeline stages, capped: n-CNV's
    9-MVTU folding yields 3, µ-CNV's 8 yields 2, a 4-stage toy yields 1.
    """
    if cap <= 0:
        raise ValueError(f"cap must be positive, got {cap}")
    return max(1, min(cap, len(folding) // 3))


class ClassifierBackend:
    """The software float path of a trained ``BinaryCoP`` (or look-alike).

    ``classifier`` needs ``predict(images, chunk_size=...) -> labels``;
    ``chunk_size`` bounds the per-forward-pass memory of a coalesced
    batch (the serving worker relies on this).
    """

    def __init__(
        self,
        classifier,
        name: Optional[str] = None,
        chunk_size: int = 256,
        max_concurrency: Optional[int] = None,
        num_workers: Optional[int] = None,
    ) -> None:
        if not hasattr(classifier, "predict"):
            raise TypeError("classifier must expose predict(images, chunk_size=...)")
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if num_workers is not None and num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        self.classifier = classifier
        self.chunk_size = int(chunk_size)
        self.num_workers = num_workers
        arch = getattr(classifier, "architecture", None)
        self.name = name or (f"software:{arch}" if arch else "software")
        if max_concurrency is None:
            max_concurrency = self._derive_concurrency()
        if max_concurrency <= 0:
            raise ValueError(
                f"max_concurrency must be positive, got {max_concurrency}"
            )
        self.max_concurrency = int(max_concurrency)

    def _derive_concurrency(self) -> int:
        """Table I dimensioning of the classifier's architecture, if any."""
        arch = getattr(self.classifier, "architecture", None)
        if arch is not None:
            try:
                from repro.core.architectures import table1_folding

                return folding_concurrency(table1_folding(arch))
            except ValueError:
                pass  # e.g. the fp32 baseline has no Table I folding
        return 1

    def infer(self, images: np.ndarray) -> np.ndarray:
        if self.num_workers is not None:
            return np.asarray(
                self.classifier.predict(
                    images,
                    chunk_size=self.chunk_size,
                    num_workers=self.num_workers,
                )
            )
        return np.asarray(
            self.classifier.predict(images, chunk_size=self.chunk_size)
        )


class AcceleratorBackend:
    """The compiled integer datapath (bit-packed XNOR simulation).

    Besides functional inference, exposes :meth:`modelled_batch_seconds`
    — what the same micro-batch would cost on the board according to the
    calibrated pipeline cycle model — so benchmarks can contrast
    simulator wall time with hardware-equivalent time.

    ``execution`` (an :class:`~repro.runtime.ExecutionConfig`, default:
    planned single-process inference) picks the runtime engine requests
    dispatch through; repeated micro-batches of the same shape reuse one
    persistent arena per worker thread and allocate nothing.
    :meth:`plan_stats` surfaces the plan-cache counters for serving
    dashboards. ``use_plan=`` is the **deprecated** spelling of
    ``execution=ExecutionConfig(use_plan=...)``.
    """

    def __init__(
        self,
        accelerator: FinnAccelerator,
        name: Optional[str] = None,
        chunk_size: int = 64,
        max_concurrency: Optional[int] = None,
        clock_mhz: float = 100.0,
        num_workers: Optional[int] = None,
        use_plan: Optional[bool] = None,
        execution=None,
    ) -> None:
        from repro.runtime import ExecutionConfig, deprecated_kwargs_config

        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if num_workers is not None and num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        if use_plan is not None:
            execution = deprecated_kwargs_config(
                "AcceleratorBackend", execution, use_plan=use_plan,
            )
        elif execution is None:
            execution = ExecutionConfig()
        self.accelerator = accelerator
        self.chunk_size = int(chunk_size)
        self.num_workers = num_workers
        self.execution = execution.merged(
            chunk_size=self.chunk_size, workers=num_workers
        )
        self.name = name or f"accelerator:{accelerator.name}"
        self.timing = analyze_pipeline(accelerator, clock_mhz)
        if max_concurrency is None:
            max_concurrency = folding_concurrency(accelerator.folding())
        if max_concurrency <= 0:
            raise ValueError(
                f"max_concurrency must be positive, got {max_concurrency}"
            )
        self.max_concurrency = int(max_concurrency)

    def infer(self, images: np.ndarray) -> np.ndarray:
        return np.asarray(
            self.accelerator.predict(images, execution=self.execution)
        )

    def plan_stats(self) -> dict:
        """Plan-cache counters (hits/misses/plans/arena bytes) for this
        backend's accelerator — zeros until the first planned batch."""
        return self.accelerator.plans.stats()

    def modelled_batch_seconds(self, batch_size: int) -> float:
        """Hardware-modelled (calibrated) time for one micro-batch."""
        return self.timing.batch_seconds(batch_size)


class ProcessPoolBackend:
    """Planned inference fanned across a multi-process pool.

    Wraps a :class:`~repro.parallel.ProcessPool`: each worker process
    owns a pre-warmed plan cache over a shared-memory arena, and batches
    move through shared-memory slots (see :mod:`repro.parallel`). This
    is the only backend whose ``max_concurrency`` exceeds the GIL —
    one concurrency slot per worker process, each a genuine core of
    XNOR compute.

    The server calls :meth:`bind_metrics` at start so pool fault events
    (worker restarts, requeued slots, task errors) surface as serving
    counters, and :meth:`close` at stop so the workers and shared
    segments never outlive the server.
    """

    def __init__(
        self,
        accelerator: FinnAccelerator,
        name: Optional[str] = None,
        num_workers: Optional[int] = None,
        buckets=None,
        max_batch: int = 32,
        slots: Optional[int] = None,
        trace_sample: Optional[int] = None,
        clock_mhz: float = 100.0,
        pool=None,
        execution=None,
    ) -> None:
        from repro.runtime import ExecutionConfig, create_engine

        if execution is None:
            execution = ExecutionConfig(isolation="process")
        elif execution.isolation != "process":
            raise ValueError(
                "ProcessPoolBackend needs isolation='process', got "
                f"{execution.isolation!r}"
            )
        execution = execution.merged(
            workers=num_workers,
            bucket_sizes=tuple(buckets) if buckets is not None else None,
            max_batch=max_batch,
            slots=slots,
            trace_sample=trace_sample,
        )
        # The registry resolves this config to the process engine; the
        # server owns the worker lifecycle, so the engine is built
        # standalone (not cached on the accelerator) and an existing
        # pool can be injected through the ``pool=`` seam.
        self.engine = create_engine(accelerator, execution, pool=pool)
        self.execution = execution
        self.accelerator = accelerator
        self.name = name or f"pool:{accelerator.name}"
        self.max_concurrency = int(self.engine.pool.num_workers)
        self.timing = analyze_pipeline(accelerator, clock_mhz)
        self._journal = None

    @property
    def pool(self):
        return self.engine.pool

    def infer(self, images: np.ndarray) -> np.ndarray:
        return np.asarray(self.engine.run(images).argmax(axis=1))

    def plan_stats(self) -> dict:
        """Aggregated per-worker plan-cache counters plus pool counters."""
        return self.pool.plan_stats()

    def modelled_batch_seconds(self, batch_size: int) -> float:
        """Hardware-modelled (calibrated) time for one micro-batch."""
        return self.timing.batch_seconds(batch_size)

    def bind_metrics(self, metrics) -> None:
        """Forward pool fault events into a serving metrics registry."""
        self.pool.on_event(metrics.increment)

    def bind_journal(self, journal) -> None:
        """Journal to receive the workers' spans when the pool closes.

        Worker spans live in the worker processes until drained; binding
        a journal here makes :meth:`close` (which the server calls while
        the workers are still alive) flush them into it first.
        """
        self._journal = journal

    def drain_spans(self, journal=None):
        """Merge worker span journals (tagged by worker id)."""
        return self.pool.drain_spans(journal)

    def close(self) -> None:
        if self._journal is not None and self.pool.healthy():
            try:
                self.pool.drain_spans(self._journal)
            except Exception:  # noqa: BLE001 - shutdown must proceed
                pass
        self.pool.close()
