"""Bounded admission queue with explicit backpressure.

The front door of the server. Capacity is a hard bound: when the queue
is full an arriving request is either **rejected** with a machine-
readable reason (the default backpressure signal — callers always learn
immediately, nothing blocks) or, under the degraded-mode policy, a
**lower-priority queued request is shed** to make room. Silent
unbounded growth — the classic way a "6400 FPS" demo falls over at an
airport gate — is impossible by construction.

Ordering is priority-first (higher ``priority`` wins), FIFO within a
priority level.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass
from typing import List, Optional

from repro.serving.request import (
    InferenceRequest,
    RejectionReason,
    RequestStatus,
)

__all__ = ["Admission", "AdmissionQueue"]


@dataclass(frozen=True)
class Admission:
    """Outcome of one ``offer``: accepted, or rejected with a reason.

    ``shed`` names the lower-priority request that was evicted to make
    room (already resolved as SHED by the queue) so the caller can count
    it.
    """

    accepted: bool
    reason: Optional[RejectionReason] = None
    shed: Optional[InferenceRequest] = None

    def __bool__(self) -> bool:
        return self.accepted


class AdmissionQueue:
    """Bounded priority queue feeding the micro-batcher.

    ``offer`` never blocks; ``pop`` blocks up to a timeout. ``close``
    wakes every popper and makes further offers fail with
    ``SHUTTING_DOWN``.
    """

    def __init__(self, capacity: int, allow_shedding: bool = True) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.allow_shedding = bool(allow_shedding)
        self._heap: List[tuple] = []  # (-priority, seq, request)
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    # -- producer side -------------------------------------------------------
    def offer(self, request: InferenceRequest) -> Admission:
        """Try to admit ``request``; never blocks.

        Full-queue policy: if shedding is enabled and the lowest-priority
        queued request ranks strictly below the newcomer, that request is
        evicted (resolved as SHED) and the newcomer admitted; otherwise
        the newcomer is rejected with ``QUEUE_FULL``.
        """
        shed_request = None
        with self._lock:
            if self._closed:
                return Admission(False, RejectionReason.SHUTTING_DOWN)
            if len(self._heap) >= self.capacity:
                victim_idx = self._shed_candidate(request.priority)
                if victim_idx is None:
                    return Admission(False, RejectionReason.QUEUE_FULL)
                shed_request = self._heap.pop(victim_idx)[2]
                heapq.heapify(self._heap)
            heapq.heappush(
                self._heap, (-request.priority, next(self._seq), request)
            )
            self._not_empty.notify()
        if shed_request is not None:
            shed_request.resolve(
                RequestStatus.SHED,
                detail=(
                    f"shed for priority-{request.priority} arrival "
                    f"under overload"
                ),
            )
        return Admission(True, shed=shed_request)

    def _shed_candidate(self, incoming_priority: int) -> Optional[int]:
        """Index of the entry to evict for ``incoming_priority``, if any.

        The victim is the lowest-priority, most-recently-enqueued entry,
        and only qualifies if it ranks strictly below the newcomer —
        equal-priority traffic is never reordered by shedding.
        """
        if not self.allow_shedding or not self._heap:
            return None
        victim_idx = max(
            range(len(self._heap)),
            key=lambda i: (self._heap[i][0], self._heap[i][1]),
        )
        neg_priority, _, _ = self._heap[victim_idx]
        if -neg_priority >= incoming_priority:
            return None
        return victim_idx

    # -- consumer side -------------------------------------------------------
    def pop(self, timeout: Optional[float] = None) -> Optional[InferenceRequest]:
        """Highest-priority request, blocking up to ``timeout`` seconds.

        Returns ``None`` on timeout or when the queue is closed and
        drained.
        """
        with self._not_empty:
            if not self._heap:
                if self._closed:
                    return None
                self._not_empty.wait(timeout)
            if not self._heap:
                return None
            return heapq.heappop(self._heap)[2]

    def depth(self) -> int:
        with self._lock:
            return len(self._heap)

    # -- lifecycle -----------------------------------------------------------
    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def close(self) -> List[InferenceRequest]:
        """Stop admissions and return any still-queued requests.

        The caller decides what to do with the leftovers (the server
        rejects them as SHUTTING_DOWN). All blocked poppers wake up.
        """
        with self._lock:
            self._closed = True
            leftovers = [entry[2] for entry in sorted(self._heap)]
            self._heap.clear()
            self._not_empty.notify_all()
        return leftovers
