"""Dynamic micro-batching: coalesce requests by size *or* deadline.

FINN-style streaming accelerators (and, less dramatically, numpy GEMMs)
reach their rated throughput only when fed full batches — but a gate
camera submits one face at a time. The micro-batcher resolves the
tension: a batch closes as soon as it holds ``max_batch_size`` requests
(**size trigger**, the bulk-throughput path) or once ``max_wait_ms`` has
elapsed since its first request (**deadline trigger**, bounding the
latency a lone request can pay to at most the wait window plus one
inference).

Requests whose per-request deadline expires while queued are resolved as
TIMED_OUT here, at collection time — they never occupy a batch slot.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.parallel.bucketing import bucket_for, validate_buckets
from repro.serving.admission import AdmissionQueue
from repro.serving.request import InferenceRequest, RequestStatus
from repro.utils.clock import MONOTONIC, Clock

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Pulls from the admission queue, emits coalesced micro-batches.

    Multiple workers may call :meth:`next_batch` concurrently — the
    underlying queue hands each popped request to exactly one caller, so
    batches never share requests.

    With ``buckets`` configured, the batcher advertises a fixed set of
    batch geometries via :meth:`bucket_for`: the worker pool pads every
    stacked batch up to its bucket before inference, so plan-cache-keyed
    backends see at most ``len(buckets)`` distinct shapes no matter how
    traffic coalesces (see :mod:`repro.parallel.bucketing` for why
    padding cannot change the valid rows' results).
    """

    def __init__(
        self,
        queue: AdmissionQueue,
        max_batch_size: int = 32,
        max_wait_ms: float = 5.0,
        on_timeout: Optional[Callable[[InferenceRequest], None]] = None,
        clock: Clock = MONOTONIC,
        buckets: Optional[Sequence[int]] = None,
    ) -> None:
        if max_batch_size <= 0:
            raise ValueError(
                f"max_batch_size must be positive, got {max_batch_size}"
            )
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self.queue = queue
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_ms) / 1e3
        self.buckets: Optional[Tuple[int, ...]] = (
            validate_buckets(buckets, self.max_batch_size)
            if buckets is not None
            else None
        )
        self._on_timeout = on_timeout
        self._clock = clock

    def bucket_for(self, n: int) -> Optional[int]:
        """The geometry a batch of ``n`` should be padded to (None: off)."""
        if self.buckets is None:
            return None
        return bucket_for(n, self.buckets)

    def _admit(self, request: InferenceRequest, batch: List[InferenceRequest]) -> None:
        """Add a live request to the batch; expire/skip dead ones."""
        if request.status is not RequestStatus.PENDING:
            return  # cancelled while queued
        if request.expired(now=self._clock.monotonic()):
            if request.resolve(
                RequestStatus.TIMED_OUT, detail="deadline expired while queued"
            ):
                if self._on_timeout is not None:
                    self._on_timeout(request)
            return
        batch.append(request)

    def next_batch(
        self, poll_timeout_s: float = 0.05
    ) -> List[InferenceRequest]:
        """The next micro-batch (possibly empty if the queue stayed idle).

        Blocks up to ``poll_timeout_s`` for the *first* request; once one
        arrives, keeps collecting until the size trigger
        (``max_batch_size`` reached → returns immediately) or the
        deadline trigger (``max_wait_ms`` since the first admit) fires.
        """
        batch: List[InferenceRequest] = []
        close_at: Optional[float] = None
        while True:
            if close_at is None:
                request = self.queue.pop(timeout=poll_timeout_s)
                if request is None:
                    return batch  # idle poll expired (or queue closed)
            else:
                remaining = close_at - self._clock.monotonic()
                if remaining <= 0:
                    return batch  # deadline trigger
                request = self.queue.pop(timeout=remaining)
                if request is None:
                    if self.queue.closed or self._clock.monotonic() >= close_at:
                        return batch
                    continue  # spurious wakeup; deadline not reached yet
            self._admit(request, batch)
            if batch and close_at is None:
                close_at = self._clock.monotonic() + self.max_wait_s
            if len(batch) >= self.max_batch_size:
                return batch  # size trigger
