"""Synthetic open-loop traffic for serving demos and benchmarks.

Open-loop means arrivals follow their own clock — a Poisson process at
``rate_hz`` — regardless of how the server is coping; this is the
arrival model that actually stresses admission control (a closed loop
self-throttles and can never overflow the queue). The images are
gate-camera face crops from :mod:`repro.data.stream`: each pool entry is
the trigger frame of one synthetic subject approaching the speed gate.

Everything is deterministic from an ``RngLike`` seed via
:mod:`repro.utils.rng`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.stream import GateTrigger, render_approach_sequence
from repro.serving.request import RequestStatus
from repro.serving.server import InferenceServer
from repro.utils.clock import MONOTONIC, Clock
from repro.utils.rng import RngLike, as_generator

__all__ = ["face_tile_pool", "OpenLoopReport", "run_open_loop"]


def face_tile_pool(
    n_tiles: int = 32,
    rng: RngLike = 0,
    frame_size: int = 32,
    labels_out: Optional[List[int]] = None,
) -> np.ndarray:
    """Pre-render ``n_tiles`` gate-camera face crops to replay as traffic.

    Rendering approach sequences is far slower than classifying them, so
    load generation renders a pool up front and samples from it at
    submit time. Each tile is the first trigger frame of one subject's
    approach (falling back to the closest frame when the trigger never
    fires). ``labels_out``, if given, receives the ground-truth wear
    class of each tile.
    """
    if n_tiles <= 0:
        raise ValueError(f"n_tiles must be positive, got {n_tiles}")
    gen = as_generator(rng)
    trigger = GateTrigger()
    tiles = []
    for _ in range(n_tiles):
        sequence = render_approach_sequence(gen, frame_size=frame_size)
        frame = trigger.first_trigger(sequence) or sequence.frames[-1]
        tiles.append(frame.face_crop(out_size=frame_size))
        if labels_out is not None:
            labels_out.append(int(sequence.label))
    return np.stack(tiles)


@dataclass
class OpenLoopReport:
    """Outcome tally of one open-loop run against a server."""

    offered: int
    duration_s: float
    rate_hz: float
    outcomes: Dict[str, int]  # RequestStatus value -> count
    latencies_s: List[float] = field(default_factory=list)  # completed only
    labels: List[Optional[int]] = field(default_factory=list)  # per request

    @property
    def completed(self) -> int:
        return self.outcomes.get(RequestStatus.COMPLETED.value, 0)

    @property
    def rejected(self) -> int:
        return self.outcomes.get(RequestStatus.REJECTED.value, 0)

    @property
    def shed(self) -> int:
        return self.outcomes.get(RequestStatus.SHED.value, 0)

    @property
    def timed_out(self) -> int:
        return self.outcomes.get(RequestStatus.TIMED_OUT.value, 0)

    @property
    def achieved_qps(self) -> float:
        """Completions per second of offered-load wall time."""
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def offered_qps(self) -> float:
        return self.offered / self.duration_s if self.duration_s > 0 else 0.0

    def latency_percentile(self, q: float) -> float:
        """Completed-request latency percentile, in seconds."""
        if not self.latencies_s:
            raise ValueError("no completed requests to take percentiles over")
        return float(np.percentile(np.asarray(self.latencies_s), q))

    def report(self) -> str:
        parts = [
            f"offered {self.offered} req in {self.duration_s:.2f}s "
            f"({self.offered_qps:,.0f}/s) -> {self.achieved_qps:,.0f} QPS served"
        ]
        parts.append(
            "outcomes: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.outcomes.items()))
        )
        if self.latencies_s:
            parts.append(
                "latency ms: "
                + ", ".join(
                    f"p{q}={self.latency_percentile(q) * 1e3:.2f}"
                    for q in (50, 95, 99)
                )
            )
        return "\n".join(parts)


def run_open_loop(
    server: InferenceServer,
    tiles: np.ndarray,
    rate_hz: float,
    duration_s: float,
    rng: RngLike = 0,
    priorities: Sequence[int] = (0,),
    timeout_s: Optional[float] = None,
    resolve_grace_s: float = 30.0,
    clock: Clock = MONOTONIC,
) -> OpenLoopReport:
    """Drive Poisson arrivals at ``rate_hz`` for ``duration_s`` seconds.

    Submissions happen on the arrival clock whether or not the server
    keeps up (that is the point — backpressure must answer, not the
    caller's restraint). When the generator falls behind wall-clock
    (e.g. extreme rates), pending arrivals are submitted immediately in
    a burst. After the window closes every handle is awaited up to
    ``resolve_grace_s`` so the report covers all offered requests.
    """
    if rate_hz <= 0:
        raise ValueError(f"rate_hz must be positive, got {rate_hz}")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    if tiles.ndim != 4:
        raise ValueError(f"tiles must be (N, H, W, C), got {tiles.shape}")
    gen = as_generator(rng)
    handles = []
    start = clock.monotonic()
    next_arrival = start + float(gen.exponential(1.0 / rate_hz))
    end = start + duration_s
    while next_arrival < end:
        delay = next_arrival - clock.monotonic()
        if delay > 0:
            clock.sleep(delay)
        idx = int(gen.integers(0, len(tiles)))
        priority = int(priorities[int(gen.integers(0, len(priorities)))])
        handles.append(
            server.submit(tiles[idx], priority=priority, timeout_s=timeout_s)
        )
        next_arrival += float(gen.exponential(1.0 / rate_hz))
    elapsed = clock.monotonic() - start

    outcomes: Dict[str, int] = {}
    latencies: List[float] = []
    labels: List[Optional[int]] = []
    deadline = clock.monotonic() + resolve_grace_s
    for handle in handles:
        status = handle.wait(timeout=max(0.0, deadline - clock.monotonic()))
        outcomes[status.value] = outcomes.get(status.value, 0) + 1
        labels.append(handle.label)
        if status is RequestStatus.COMPLETED and handle.latency_s is not None:
            latencies.append(handle.latency_s)
    return OpenLoopReport(
        offered=len(handles),
        duration_s=elapsed,
        rate_hz=float(rate_hz),
        outcomes=outcomes,
        latencies_s=latencies,
        labels=labels,
    )
