"""Serving metrics: QPS, latency percentiles, batch histogram, counters.

One :class:`MetricsRegistry` is shared by every worker thread (all
mutation is lock-guarded; per-section wall time additionally flows into
a shared thread-safe :class:`~repro.utils.profiling.Stopwatch`).
``snapshot()`` produces an immutable :class:`ServerStats` — the object
``InferenceServer.stats()`` returns — and :class:`StatsReporter` prints
one periodically from a daemon thread.

Percentiles and QPS are computed over a sliding window of the most
recent observations (``window`` entries), so a long-running server
reports current behaviour, not lifetime averages.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.utils.clock import MONOTONIC, Clock
from repro.utils.profiling import Stopwatch

__all__ = ["MetricsRegistry", "ServerStats", "StatsReporter"]

_PERCENTILES = (50.0, 95.0, 99.0)


@dataclass(frozen=True)
class ServerStats:
    """Immutable snapshot of a server's service statistics."""

    uptime_s: float
    queue_depth: int
    counters: Dict[str, int]
    qps: float
    latency_ms: Dict[str, float]  # p50/p95/p99/mean over the window
    queue_wait_ms: Dict[str, float]
    batch_histogram: Dict[int, int]  # executed batch size -> count
    section_totals_s: Dict[str, float]  # Stopwatch section -> total seconds

    @property
    def submitted(self) -> int:
        return self.counters.get("submitted", 0)

    @property
    def completed(self) -> int:
        return self.counters.get("completed", 0)

    @property
    def rejected(self) -> int:
        return self.counters.get("rejected", 0)

    @property
    def shed(self) -> int:
        return self.counters.get("shed", 0)

    @property
    def timed_out(self) -> int:
        return self.counters.get("timed_out", 0)

    @property
    def failed(self) -> int:
        return self.counters.get("failed", 0)

    @property
    def worker_restarts(self) -> int:
        """Pool worker processes respawned after dying mid-service."""
        return self.counters.get("pool_worker_restarts", 0)

    @property
    def requeued(self) -> int:
        """In-flight slots re-sent to a fresh worker after a death."""
        return self.counters.get("pool_requeued", 0)

    @property
    def padded_images(self) -> int:
        """Pad rows added to reach a configured bucket geometry."""
        return self.counters.get("padded_images", 0)

    @property
    def mean_batch_size(self) -> float:
        total = sum(size * n for size, n in self.batch_histogram.items())
        batches = sum(self.batch_histogram.values())
        return total / batches if batches else 0.0

    def report(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            (
                f"serving {self.uptime_s:8.1f}s up | queue depth {self.queue_depth} | "
                f"{self.qps:,.0f} QPS (window)"
            ),
            (
                f"  requests: {self.submitted} submitted, "
                f"{self.completed} completed, {self.rejected} rejected, "
                f"{self.shed} shed, {self.timed_out} timed out, "
                f"{self.failed} failed"
            ),
        ]
        if self.latency_ms:
            lines.append(
                "  latency ms: "
                + ", ".join(f"{k}={v:.2f}" for k, v in self.latency_ms.items())
            )
        if self.queue_wait_ms:
            lines.append(
                "  queue wait ms: "
                + ", ".join(f"{k}={v:.2f}" for k, v in self.queue_wait_ms.items())
            )
        if self.batch_histogram:
            hist = ", ".join(
                f"{size}x{count}"
                for size, count in sorted(self.batch_histogram.items())
            )
            lines.append(
                f"  batches (size x count): {hist} "
                f"(mean size {self.mean_batch_size:.1f})"
            )
        extra = {
            k: v
            for k, v in self.counters.items()
            if k
            not in (
                "submitted",
                "completed",
                "rejected",
                "shed",
                "timed_out",
                "failed",
            )
            and v
        }
        if extra:
            lines.append(
                "  counters: " + ", ".join(f"{k}={v}" for k, v in sorted(extra.items()))
            )
        return "\n".join(lines)


def _distribution(values) -> Dict[str, float]:
    if not values:
        return {}
    arr = np.asarray(values, dtype=np.float64) * 1e3  # -> ms
    out = {f"p{int(p)}": float(np.percentile(arr, p)) for p in _PERCENTILES}
    out["mean"] = float(arr.mean())
    return out


class MetricsRegistry:
    """Thread-safe accumulator for the serving layer's observability."""

    def __init__(
        self,
        stopwatch: Optional[Stopwatch] = None,
        window: int = 4096,
        clock: Clock = MONOTONIC,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.stopwatch = stopwatch or Stopwatch()
        self.clock = clock
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._latencies: deque = deque(maxlen=window)  # seconds
        self._waits: deque = deque(maxlen=window)  # seconds
        self._completion_marks: deque = deque(maxlen=window)  # monotonic stamps
        self._batch_histogram: Dict[int, int] = {}
        self._started_at = clock.monotonic()

    # -- recording -----------------------------------------------------------
    def increment(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def observe_completion(self, latency_s: float) -> None:
        """A request completed end-to-end in ``latency_s`` seconds."""
        now = self.clock.monotonic()
        with self._lock:
            self._counters["completed"] = self._counters.get("completed", 0) + 1
            self._latencies.append(latency_s)
            self._completion_marks.append(now)
        self.stopwatch.add("request.latency", latency_s)

    def observe_queue_wait(self, wait_s: float) -> None:
        with self._lock:
            self._waits.append(wait_s)
        self.stopwatch.add("request.queue_wait", wait_s)

    def observe_batch(self, size: int) -> None:
        """A micro-batch of ``size`` requests was executed."""
        with self._lock:
            self._batch_histogram[size] = self._batch_histogram.get(size, 0) + 1

    # -- reading -------------------------------------------------------------
    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self, queue_depth: int = 0) -> ServerStats:
        now = self.clock.monotonic()
        with self._lock:
            counters = dict(self._counters)
            latencies = list(self._latencies)
            waits = list(self._waits)
            marks = list(self._completion_marks)
            histogram = dict(self._batch_histogram)
            uptime = now - self._started_at
        if len(marks) >= 2 and marks[-1] > marks[0]:
            qps = (len(marks) - 1) / (marks[-1] - marks[0])
        elif marks and uptime > 0:
            qps = len(marks) / uptime
        else:
            qps = 0.0
        section_totals, _ = self.stopwatch.snapshot()
        return ServerStats(
            uptime_s=uptime,
            queue_depth=int(queue_depth),
            counters=counters,
            qps=float(qps),
            latency_ms=_distribution(latencies),
            queue_wait_ms=_distribution(waits),
            batch_histogram=histogram,
            section_totals_s=section_totals,
        )


class StatsReporter:
    """Daemon thread emitting a stats report every ``interval_s``.

    ``source`` is any zero-arg callable returning a :class:`ServerStats`
    (typically ``server.stats``); ``sink`` receives the rendered report
    string (default: ``print``).
    """

    def __init__(
        self,
        source: Callable[[], ServerStats],
        interval_s: float = 1.0,
        sink: Callable[[str], None] = print,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self._source = source
        self._sink = sink
        self.interval_s = float(interval_s)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "StatsReporter":
        if self._thread is not None:
            raise RuntimeError("reporter already started")
        self._thread = threading.Thread(
            target=self._run, name="serving-stats-reporter", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._sink(self._source().report())

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
