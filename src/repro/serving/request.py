"""Request/result primitives for the inference serving layer.

A submitted image becomes an :class:`InferenceRequest` — the server-side
record that flows through queue, batcher and worker — and the caller
keeps a :class:`ResultHandle`, a future-like view that resolves exactly
once to a terminal :class:`RequestStatus`. Every way a request can leave
the system is an explicit status (completed, rejected, shed, timed out,
cancelled, failed); nothing is dropped silently.
"""

from __future__ import annotations

import enum
import itertools
import threading
import time
from typing import Optional

import numpy as np

__all__ = [
    "RequestStatus",
    "RejectionReason",
    "ServingError",
    "RequestNotCompleted",
    "InferenceRequest",
    "ResultHandle",
]


class RequestStatus(enum.Enum):
    """Lifecycle of a request; everything except the first two is terminal."""

    PENDING = "pending"  # queued, waiting for a batch slot
    RUNNING = "running"  # inside a worker's micro-batch
    COMPLETED = "completed"  # classified; label available
    REJECTED = "rejected"  # refused at admission (backpressure)
    SHED = "shed"  # evicted from a full queue for a higher-priority arrival
    TIMED_OUT = "timed_out"  # deadline expired before a worker reached it
    CANCELLED = "cancelled"  # caller cancelled while still pending
    FAILED = "failed"  # every backend raised

    @property
    def terminal(self) -> bool:
        return self not in (RequestStatus.PENDING, RequestStatus.RUNNING)


class RejectionReason(enum.Enum):
    """Why admission control refused a request (returned, never raised)."""

    QUEUE_FULL = "queue_full"
    SHUTTING_DOWN = "shutting_down"


class ServingError(RuntimeError):
    """Base class for serving-layer errors."""


class RequestNotCompleted(ServingError):
    """``result()`` was called on a request that did not complete."""

    def __init__(self, status: RequestStatus, detail: str = "") -> None:
        self.status = status
        self.detail = detail
        msg = f"request ended {status.value}"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


_REQUEST_IDS = itertools.count()


class InferenceRequest:
    """One image awaiting classification (server-side record).

    Thread-safety: the status transition happens under ``_lock`` and is
    write-once — the first thread to resolve a terminal status wins,
    later attempts are no-ops returning ``False``. Waiters block on an
    event that fires at resolution.
    """

    __slots__ = (
        "request_id",
        "image",
        "priority",
        "submitted_at",
        "deadline",
        "label",
        "error",
        "detail",
        "batch_size",
        "backend_name",
        "completed_at",
        "started_at",
        "trace_span",
        "_status",
        "_lock",
        "_done",
    )

    def __init__(
        self,
        image: np.ndarray,
        priority: int = 0,
        timeout_s: Optional[float] = None,
        now: Optional[float] = None,
    ) -> None:
        if image.ndim != 3:
            raise ValueError(
                f"a request carries one (H, W, C) image, got shape {image.shape}"
            )
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s}")
        now = time.monotonic() if now is None else now
        self.request_id = next(_REQUEST_IDS)
        self.image = image
        self.priority = int(priority)
        self.submitted_at = now
        self.deadline = None if timeout_s is None else now + timeout_s
        self.label: Optional[int] = None
        self.error: Optional[BaseException] = None
        self.detail: str = ""
        self.batch_size: Optional[int] = None  # size of the batch that ran it
        self.backend_name: Optional[str] = None
        self.completed_at: Optional[float] = None
        self.started_at: Optional[float] = None
        # Set by the server when telemetry is active: the request's
        # trace span, finished here at resolution (duck-typed — a
        # tracing Span or the shared no-op; None when telemetry is off).
        self.trace_span = None
        self._status = RequestStatus.PENDING
        self._lock = threading.Lock()
        self._done = threading.Event()

    # -- state machine -------------------------------------------------------
    @property
    def status(self) -> RequestStatus:
        with self._lock:
            return self._status

    def expired(self, now: Optional[float] = None) -> bool:
        """Whether the per-request deadline has passed."""
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline

    def begin(self, now: Optional[float] = None) -> bool:
        """PENDING -> RUNNING; False if the request already left the system."""
        with self._lock:
            if self._status is not RequestStatus.PENDING:
                return False
            self._status = RequestStatus.RUNNING
            self.started_at = time.monotonic() if now is None else now
            return True

    def resolve(
        self,
        status: RequestStatus,
        label: Optional[int] = None,
        error: Optional[BaseException] = None,
        detail: str = "",
    ) -> bool:
        """Move to a terminal status (write-once); wakes all waiters."""
        if not status.terminal:
            raise ValueError(f"{status} is not a terminal status")
        with self._lock:
            if self._status.terminal:
                return False
            self._status = status
            self.label = label
            self.error = error
            self.detail = detail
            self.completed_at = time.monotonic()
        self._done.set()
        span = self.trace_span
        if span is not None:
            span.set_attribute("status", status.value)
            span.finish()
        return True

    def cancel(self) -> bool:
        """PENDING -> CANCELLED; False once running or terminal."""
        with self._lock:
            if self._status is not RequestStatus.PENDING:
                return False
            self._status = RequestStatus.CANCELLED
            self.detail = "cancelled by caller"
            self.completed_at = time.monotonic()
        self._done.set()
        span = self.trace_span
        if span is not None:
            span.set_attribute("status", RequestStatus.CANCELLED.value)
            span.finish()
        return True

    # -- derived timings -----------------------------------------------------
    @property
    def latency_s(self) -> Optional[float]:
        """Submit-to-resolution wall time (None while in flight)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    @property
    def queue_wait_s(self) -> Optional[float]:
        """Time spent queued before a worker picked the request up."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at


class ResultHandle:
    """Caller-facing future for one submitted request.

    ``wait`` blocks until the request resolves; ``result`` additionally
    unwraps the label or raises :class:`RequestNotCompleted` describing
    the terminal status (rejection reason, timeout, backend error).
    """

    __slots__ = ("_request",)

    def __init__(self, request: InferenceRequest) -> None:
        self._request = request

    @property
    def request_id(self) -> int:
        return self._request.request_id

    @property
    def status(self) -> RequestStatus:
        return self._request.status

    @property
    def done(self) -> bool:
        return self._request.status.terminal

    @property
    def label(self) -> Optional[int]:
        """The predicted class (None unless COMPLETED)."""
        return self._request.label

    @property
    def detail(self) -> str:
        """Human-readable disposition (rejection reason, error, ...)."""
        return self._request.detail

    @property
    def latency_s(self) -> Optional[float]:
        return self._request.latency_s

    @property
    def queue_wait_s(self) -> Optional[float]:
        return self._request.queue_wait_s

    @property
    def batch_size(self) -> Optional[int]:
        return self._request.batch_size

    @property
    def backend_name(self) -> Optional[str]:
        return self._request.backend_name

    def wait(self, timeout: Optional[float] = None) -> RequestStatus:
        """Block until resolution (or ``timeout``); returns current status."""
        self._request._done.wait(timeout)
        return self._request.status

    def result(self, timeout: Optional[float] = None) -> int:
        """The predicted class label; raises if the request did not complete."""
        if not self._request._done.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} still {self.status.value} "
                f"after {timeout}s"
            )
        if self._request.status is RequestStatus.COMPLETED:
            return int(self._request.label)
        if self._request.error is not None:
            raise RequestNotCompleted(
                self._request.status, self._request.detail
            ) from self._request.error
        raise RequestNotCompleted(self._request.status, self._request.detail)

    def cancel(self) -> bool:
        """Cancel if still pending; False once running or terminal."""
        return self._request.cancel()
