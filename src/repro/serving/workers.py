"""Worker pool: micro-batches -> backends -> resolved requests.

Each worker loops on the batcher, stacks the batch's images and runs
them on the first backend with a free concurrency slot — backends are
ordered, so the first is primary and the rest are fallbacks (tried on a
saturated or *failing* primary). Per-backend
:class:`threading.BoundedSemaphore` s enforce the concurrency limits the
backends derive from their Table I folding.

Every request the pool touches leaves in a terminal state: COMPLETED
with a label, TIMED_OUT if its deadline fired in the queue, or FAILED
carrying the last backend error if every backend raised.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.serving.backends import InferenceBackend
from repro.serving.batcher import MicroBatcher
from repro.serving.metrics import MetricsRegistry
from repro.serving.request import InferenceRequest, RequestStatus
from repro.telemetry.tracing import NOOP_SPAN, get_tracer

__all__ = ["WorkerPool"]


class WorkerPool:
    """``num_workers`` threads pulling micro-batches and running backends."""

    def __init__(
        self,
        batcher: MicroBatcher,
        backends: Sequence[InferenceBackend],
        metrics: MetricsRegistry,
        num_workers: int = 2,
        poll_timeout_s: float = 0.02,
    ) -> None:
        if not backends:
            raise ValueError("worker pool needs at least one backend")
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        names = [b.name for b in backends]
        if len(set(names)) != len(names):
            raise ValueError(f"backend names must be unique, got {names}")
        self.batcher = batcher
        self.backends = list(backends)
        self.metrics = metrics
        self.num_workers = int(num_workers)
        self.poll_timeout_s = float(poll_timeout_s)
        self._slots: Dict[str, threading.BoundedSemaphore] = {
            b.name: threading.BoundedSemaphore(b.max_concurrency)
            for b in backends
        }
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []

    # -- lifecycle -----------------------------------------------------------
    @property
    def running(self) -> bool:
        return bool(self._threads) and not self._stop.is_set()

    @property
    def workers_alive(self) -> int:
        """How many worker threads are actually alive (health probe)."""
        return sum(1 for t in self._threads if t.is_alive())

    def start(self) -> None:
        if self._threads:
            raise RuntimeError("worker pool already started")
        self._stop.clear()
        for i in range(self.num_workers):
            t = threading.Thread(
                target=self._loop, name=f"serving-worker-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        """Signal workers to exit after their current batch and join them."""
        self._stop.set()
        for t in self._threads:
            t.join(timeout=timeout)
        self._threads = []

    # -- the work ------------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.is_set():
            batch = self.batcher.next_batch(poll_timeout_s=self.poll_timeout_s)
            if batch:
                self._execute(batch)

    def _acquire_backend(self):
        """(backend, semaphore) — first with a free slot, else wait on primary.

        Fallbacks only absorb work the primary cannot take *right now*;
        an idle system always runs on the primary backend.
        """
        primary, primary_slot = self.backends[0], self._slots[self.backends[0].name]
        if primary_slot.acquire(blocking=False):
            return primary, primary_slot
        for backend in self.backends[1:]:
            slot = self._slots[backend.name]
            if slot.acquire(blocking=False):
                self.metrics.increment("spillovers")
                return backend, slot
        while not primary_slot.acquire(timeout=0.1):
            if self._stop.is_set() and primary_slot.acquire(blocking=False):
                break  # drain remaining work even while stopping
        return primary, primary_slot

    def _execute(self, batch: List[InferenceRequest]) -> None:
        now_batch: List[InferenceRequest] = []
        for request in batch:
            # The deadline may have lapsed while the batch was held open
            # for its max_wait window — enforce it up to the moment
            # inference actually starts.
            if request.expired():
                if request.resolve(
                    RequestStatus.TIMED_OUT,
                    detail="deadline expired awaiting batch execution",
                ):
                    self.metrics.increment("timed_out")
                continue
            if request.begin():
                self.metrics.observe_queue_wait(request.queue_wait_s)
                now_batch.append(request)
        if not now_batch:
            return
        images = np.stack([r.image for r in now_batch])
        bucket = self.batcher.bucket_for(len(now_batch))
        if bucket is not None and bucket > len(now_batch):
            # Pad up to the bucket geometry so shape-keyed backends (the
            # plan caches) see a fixed set of batch shapes; the pad rows'
            # labels are sliced off below.
            pad = np.zeros(
                (bucket - len(now_batch),) + images.shape[1:], images.dtype
            )
            images = np.concatenate([images, pad])
            self.metrics.increment("padded_images", bucket - len(now_batch))
        self.metrics.observe_batch(len(now_batch))

        # The batch span parents under the first traced request and
        # *links* to the rest — a micro-batch belongs to one trace tree
        # but serves many requests, and links keep the others findable.
        tracer = get_tracer()
        if tracer.enabled:
            traced = [
                r.trace_span
                for r in now_batch
                if r.trace_span is not None and r.trace_span.recording
            ]
            batch_span = tracer.start_span(
                "serving.batch",
                kind="batch",
                parent=traced[0] if traced else NOOP_SPAN,
                links=[s.span_id for s in traced[1:]],
                attributes={"size": len(now_batch)},
            )
        else:
            batch_span = NOOP_SPAN

        last_error: Optional[BaseException] = None
        tried: List[str] = []
        try:
            for attempt in range(len(self.backends)):
                if attempt == 0:
                    backend, slot = self._acquire_backend()
                else:
                    backend = next(
                        (b for b in self.backends if b.name not in tried), None
                    )
                    if backend is None:
                        break
                    slot = self._slots[backend.name]
                    slot.acquire()
                    self.metrics.increment("fallbacks")
                tried.append(backend.name)
                try:
                    # The backend span is *current* for the infer call, so
                    # datapath-internal spans (per-hw-stage) nest under it.
                    with self.metrics.stopwatch.section(
                        f"infer.{backend.name}"
                    ), tracer.span(
                        "serving.infer",
                        kind="backend",
                        parent=batch_span,
                        attributes={
                            "backend": backend.name, "size": len(now_batch)
                        },
                    ):
                        labels = np.asarray(backend.infer(images))
                except Exception as exc:  # noqa: BLE001 — fall back, then report
                    last_error = exc
                    self.metrics.increment("backend_errors")
                    continue
                finally:
                    slot.release()
                if labels.shape[0] != images.shape[0]:
                    last_error = RuntimeError(
                        f"backend {backend.name!r} returned {labels.shape[0]} "
                        f"labels for a batch of {images.shape[0]}"
                    )
                    self.metrics.increment("backend_errors")
                    continue
                labels = labels[: len(now_batch)]  # drop pad-row labels
                batch_span.set_attribute("backend", backend.name)
                self._complete(now_batch, labels, backend.name)
                return
            for request in now_batch:
                if request.resolve(
                    RequestStatus.FAILED,
                    error=last_error,
                    detail=(
                        f"all backends failed ({', '.join(tried)}): {last_error}"
                    ),
                ):
                    self.metrics.increment("failed")
        finally:
            batch_span.finish()

    def _complete(
        self, batch: List[InferenceRequest], labels: np.ndarray, backend_name: str
    ) -> None:
        for request, label in zip(batch, labels):
            request.batch_size = len(batch)
            request.backend_name = backend_name
            if request.expired():
                # Deadline fired mid-inference: still deliver the label,
                # but count the lateness so operators can see it.
                self.metrics.increment("late_completions")
            if request.resolve(RequestStatus.COMPLETED, label=int(label)):
                self.metrics.observe_completion(request.latency_s)
