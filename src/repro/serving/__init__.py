"""``repro.serving`` — dynamically-batched, backpressured inference serving.

The request path the paper's deployment scenarios imply but never
specify: gate cameras submit single face tiles, a bounded admission
queue applies explicit backpressure (reject-with-reason, priority
shedding under overload), a micro-batcher coalesces traffic up to
``max_batch_size`` or ``max_wait_ms`` — whichever comes first — and a
worker pool executes batches on pluggable backends (the numpy
``BinaryCoP`` path, the bit-packed XNOR ``FinnAccelerator`` simulator)
with per-backend concurrency derived from the Table I folding. Every
outcome — completion, rejection, shed, timeout, failure — is explicit
and counted by the metrics registry.

Entry points: :class:`InferenceServer` (Python API), ``repro serve`` /
``repro serve-bench`` (CLI), :mod:`repro.serving.loadgen` (synthetic
open-loop traffic for demos and benchmarks).
"""

from repro.serving.admission import Admission, AdmissionQueue
from repro.serving.backends import (
    AcceleratorBackend,
    ClassifierBackend,
    InferenceBackend,
    ProcessPoolBackend,
    folding_concurrency,
)
from repro.serving.batcher import MicroBatcher
from repro.serving.loadgen import OpenLoopReport, face_tile_pool, run_open_loop
from repro.serving.metrics import MetricsRegistry, ServerStats, StatsReporter
from repro.serving.request import (
    InferenceRequest,
    RejectionReason,
    RequestNotCompleted,
    RequestStatus,
    ResultHandle,
    ServingError,
)
from repro.serving.server import InferenceServer, ServingConfig
from repro.serving.workers import WorkerPool

__all__ = [
    "Admission",
    "AdmissionQueue",
    "AcceleratorBackend",
    "ClassifierBackend",
    "InferenceBackend",
    "ProcessPoolBackend",
    "folding_concurrency",
    "MicroBatcher",
    "OpenLoopReport",
    "face_tile_pool",
    "run_open_loop",
    "MetricsRegistry",
    "ServerStats",
    "StatsReporter",
    "InferenceRequest",
    "RejectionReason",
    "RequestNotCompleted",
    "RequestStatus",
    "ResultHandle",
    "ServingError",
    "InferenceServer",
    "ServingConfig",
    "WorkerPool",
]
