"""The inference server: queue + micro-batcher + worker pool + metrics.

:class:`InferenceServer` is the paper's deployment story turned into a
request path: gate cameras (or any caller) submit single face tiles,
admission control applies explicit backpressure, the micro-batcher
coalesces traffic so the backend runs near its batched rate, and every
outcome is observable through :meth:`InferenceServer.stats`.

Typical use::

    from repro.serving import InferenceServer, ServingConfig

    server = InferenceServer.from_classifier(clf, ServingConfig(
        max_batch_size=32, max_wait_ms=5.0, queue_capacity=256))
    with server:                       # starts workers, stops on exit
        handle = server.submit(image)  # never blocks; may be rejected
        label = handle.result(timeout=1.0)
        print(server.stats().report())
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.serving.admission import AdmissionQueue
from repro.serving.backends import (
    AcceleratorBackend,
    ClassifierBackend,
    InferenceBackend,
)
from repro.serving.batcher import MicroBatcher
from repro.serving.metrics import MetricsRegistry, ServerStats, StatsReporter
from repro.serving.request import (
    InferenceRequest,
    RequestStatus,
    ResultHandle,
)
from repro.serving.workers import WorkerPool
from repro.telemetry.health import (
    HealthReport,
    probe_backend_smoke,
    probe_queue,
    probe_workers,
)
from repro.telemetry.tracing import get_tracer

__all__ = ["ServingConfig", "InferenceServer"]


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the serving layer (validated eagerly).

    * ``max_batch_size`` / ``max_wait_ms`` — the micro-batcher's size and
      deadline triggers: a lone request waits at most ``max_wait_ms``
      before inference starts, bulk traffic is coalesced up to
      ``max_batch_size``.
    * ``queue_capacity`` — the admission bound; arrivals beyond it are
      rejected (or shed lower-priority work when ``allow_shedding``).
    * ``num_workers`` — batcher/backend driver threads.
    * ``default_timeout_s`` — per-request deadline applied when
      ``submit`` does not specify one (``None`` = no deadline).
    * ``bucket_sizes`` — optional batch-shape buckets: formed batches
      are padded up to the nearest listed size so shape-keyed backends
      (plan caches, the process pool) see a small fixed set of batch
      geometries. The list must be strictly increasing positive sizes
      and the largest bucket must cover ``max_batch_size`` — rejected
      here rather than surfacing as padding errors deep in the batcher.
    """

    max_batch_size: int = 32
    max_wait_ms: float = 5.0
    queue_capacity: int = 256
    num_workers: int = 2
    default_timeout_s: Optional[float] = None
    allow_shedding: bool = True
    worker_poll_s: float = 0.02
    metrics_window: int = 4096
    bucket_sizes: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ValueError(
                f"max_batch_size must be positive, got {self.max_batch_size}"
            )
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.queue_capacity <= 0:
            raise ValueError(
                f"queue_capacity must be positive, got {self.queue_capacity}"
            )
        if self.num_workers <= 0:
            raise ValueError(
                f"num_workers must be positive, got {self.num_workers}"
            )
        if self.default_timeout_s is not None and self.default_timeout_s <= 0:
            raise ValueError(
                f"default_timeout_s must be positive, got {self.default_timeout_s}"
            )
        if self.worker_poll_s <= 0:
            raise ValueError(
                f"worker_poll_s must be positive, got {self.worker_poll_s}"
            )
        if self.metrics_window <= 0:
            raise ValueError(
                f"metrics_window must be positive, got {self.metrics_window}"
            )
        if self.bucket_sizes is not None:
            from repro.parallel.bucketing import validate_buckets

            buckets = tuple(int(b) for b in self.bucket_sizes)
            for b in buckets:
                if b <= 0:
                    raise ValueError(
                        f"bucket_sizes must be positive, got {b} in {buckets}"
                    )
            if any(a >= b for a, b in zip(buckets, buckets[1:])):
                raise ValueError(
                    "bucket_sizes must be strictly increasing (sorted, no "
                    f"duplicates), got {buckets}"
                )
            object.__setattr__(
                self,
                "bucket_sizes",
                validate_buckets(buckets, self.max_batch_size),
            )


class InferenceServer:
    """Dynamically-batched, backpressured serving over pluggable backends.

    ``backends`` is an ordered sequence — first is primary, the rest are
    fallbacks for saturation or failure. Use :meth:`from_classifier` /
    :meth:`from_accelerator` for the common single-model cases.
    """

    def __init__(
        self,
        backends: Union[InferenceBackend, Sequence[InferenceBackend]],
        config: Optional[ServingConfig] = None,
    ) -> None:
        if isinstance(backends, (list, tuple)):
            backend_list = list(backends)
        else:
            backend_list = [backends]
        if not backend_list:
            raise ValueError("server needs at least one backend")
        self.config = config or ServingConfig()
        self.metrics = MetricsRegistry(window=self.config.metrics_window)
        self._queue = AdmissionQueue(
            self.config.queue_capacity, allow_shedding=self.config.allow_shedding
        )
        self._batcher = MicroBatcher(
            self._queue,
            max_batch_size=self.config.max_batch_size,
            max_wait_ms=self.config.max_wait_ms,
            on_timeout=lambda _req: self.metrics.increment("timed_out"),
            buckets=self.config.bucket_sizes,
        )
        self._workers = WorkerPool(
            self._batcher,
            backend_list,
            self.metrics,
            num_workers=self.config.num_workers,
            poll_timeout_s=self.config.worker_poll_s,
        )
        self._started = False
        self._stopped = False

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_classifier(
        cls,
        classifier,
        config: Optional[ServingConfig] = None,
        with_accelerator_fallback: bool = False,
    ) -> "InferenceServer":
        """Serve a ``BinaryCoP`` on its numpy path.

        ``with_accelerator_fallback`` compiles the Table I accelerator
        simulator as a second backend that absorbs spillover when the
        software path is saturated (and covers its failures).
        """
        backends: List[InferenceBackend] = [ClassifierBackend(classifier)]
        if with_accelerator_fallback:
            backends.append(AcceleratorBackend(classifier.deploy()))
        return cls(backends, config)

    @classmethod
    def from_accelerator(
        cls,
        accelerator,
        config: Optional[ServingConfig] = None,
        mode: Optional[str] = None,
        execution=None,
    ) -> "InferenceServer":
        """Serve a compiled ``FinnAccelerator`` (bit-packed XNOR path).

        ``execution`` (an :class:`~repro.runtime.ExecutionConfig`) picks
        the runtime engine: process isolation serves through a
        :class:`~repro.serving.backends.ProcessPoolBackend` — one plan
        cache per worker *process*, multi-core throughput (closed with
        the server) — anything else through an
        :class:`~repro.serving.backends.AcceleratorBackend`. ``mode`` is
        the **deprecated** spelling (``"process"`` maps to
        ``isolation="process"``).
        """
        from repro.runtime import ExecutionConfig, deprecated_kwargs_config

        if mode is not None:
            execution = deprecated_kwargs_config(
                "InferenceServer.from_accelerator", execution, mode=mode,
            )
        elif execution is None:
            execution = ExecutionConfig()
        config = config or ServingConfig()
        if execution.isolation == "process":
            from repro.serving.backends import ProcessPoolBackend

            backend: InferenceBackend = ProcessPoolBackend(
                accelerator,
                buckets=config.bucket_sizes,
                max_batch=config.max_batch_size,
                execution=execution,
            )
        else:
            backend = AcceleratorBackend(accelerator, execution=execution)
        return cls([backend], config)

    # -- lifecycle -----------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._started and not self._stopped

    def start(self) -> "InferenceServer":
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        for backend in self._workers.backends:
            bind = getattr(backend, "bind_metrics", None)
            if bind is not None:
                bind(self.metrics)
        self._workers.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop serving. With ``drain`` the queue is worked off first.

        Any request still queued at the cutoff resolves as REJECTED
        (SHUTTING_DOWN) — no handle is ever left dangling.
        """
        if self._stopped:
            return
        self._stopped = True
        if drain and self._started:
            deadline = time.monotonic() + timeout
            while self._queue.depth() and time.monotonic() < deadline:
                time.sleep(0.01)
        leftovers = self._queue.close()
        for request in leftovers:
            if request.resolve(
                RequestStatus.REJECTED, detail="server shutting down"
            ):
                self.metrics.increment("rejected")
        if self._started:
            self._workers.stop(timeout=timeout)
        for backend in self._workers.backends:
            close = getattr(backend, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- request path --------------------------------------------------------
    def submit(
        self,
        image: np.ndarray,
        priority: int = 0,
        timeout_s: Optional[float] = None,
    ) -> ResultHandle:
        """Submit one ``(H, W, C)`` image; never blocks.

        Backpressure is explicit: the returned handle is already
        resolved as REJECTED (with a reason in ``handle.detail``) when
        admission control refuses it — inspect ``handle.status`` or let
        ``handle.result()`` raise. ``priority`` orders service (higher
        first) and governs shedding under overload; ``timeout_s``
        (default: config's ``default_timeout_s``) is the per-request
        deadline after which a queued request is dropped as TIMED_OUT.
        """
        image = np.asarray(image)
        request = InferenceRequest(
            image,
            priority=priority,
            timeout_s=(
                self.config.default_timeout_s if timeout_s is None else timeout_s
            ),
        )
        tracer = get_tracer()
        if tracer.enabled:
            # The trace root: starts here on the submit thread, finishes
            # wherever the request resolves (worker, batcher, shutdown).
            request.trace_span = tracer.start_span(
                "serving.request",
                kind="request",
                parent=None,
                attributes={
                    "request_id": request.request_id, "priority": int(priority)
                },
            )
        self.metrics.increment("submitted")
        admission = self._queue.offer(request)
        if admission.shed is not None:
            self.metrics.increment("shed")
        if not admission.accepted:
            request.resolve(
                RequestStatus.REJECTED,
                detail=f"admission refused: {admission.reason.value}",
            )
            self.metrics.increment("rejected")
        return ResultHandle(request)

    def predict(
        self,
        images: np.ndarray,
        timeout: Optional[float] = 30.0,
        priority: int = 0,
    ) -> np.ndarray:
        """Synchronous convenience: submit a batch, wait, return labels.

        Submission is windowed to ``queue_capacity`` in-flight requests,
        so a caller's batch can exceed the admission bound without
        rejecting itself. Raises
        :class:`~repro.serving.request.RequestNotCompleted` if any
        request was rejected (e.g. by competing traffic), shed, timed
        out or failed — use :meth:`submit` directly for graceful
        handling.
        """
        images = np.asarray(images)
        if images.ndim == 3:
            images = images[None]
        labels: List[int] = []
        window = self.config.queue_capacity
        for start in range(0, len(images), window):
            handles = [
                self.submit(img, priority=priority)
                for img in images[start : start + window]
            ]
            labels.extend(h.result(timeout=timeout) for h in handles)
        return np.asarray(labels)

    # -- health --------------------------------------------------------------
    def health(self, smoke: bool = False) -> HealthReport:
        """Probe the server: queue saturation, worker liveness, backends.

        ``smoke`` additionally pushes one zero image straight through
        every backend (bypassing the queue) — the expensive, conclusive
        readiness check. The report never raises; failing backends show
        up as FAILING probes.
        """
        probes = [
            probe_queue(
                self._queue.depth(),
                self.config.queue_capacity,
                closed=self._queue.closed,
            ),
            probe_workers(
                self._workers.workers_alive,
                self.config.num_workers,
                running=self.running,
            ),
        ]
        if smoke:
            probes.extend(probe_backend_smoke(b) for b in self._workers.backends)
        return HealthReport(probes=tuple(probes))

    def ready(self) -> bool:
        """Readiness: running, healthy, and every backend smoke-predicts."""
        return self.running and self.health(smoke=True).ok

    # -- observability -------------------------------------------------------
    @property
    def backends(self):
        """The worker pool's backend list (primary first)."""
        return list(self._workers.backends)

    def stats(self) -> ServerStats:
        """Snapshot of service statistics (see :class:`ServerStats`)."""
        return self.metrics.snapshot(queue_depth=self._queue.depth())

    def reporter(
        self, interval_s: float = 1.0, sink=print
    ) -> StatsReporter:
        """A (not yet started) periodic stats reporter bound to this server."""
        return StatsReporter(self.stats, interval_s=interval_s, sink=sink)

    @property
    def queue_depth(self) -> int:
        return self._queue.depth()
