"""Lightweight wall-clock timers and arithmetic-operation counters.

The hardware simulator reports cycle counts; the software side uses these
helpers to report wall-clock and MAC-operation tallies in benchmarks.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

__all__ = ["Stopwatch", "OpCounter", "timed"]


@dataclass
class Stopwatch:
    """Accumulating wall-clock timer keyed by section name.

    Thread-safe: all mutation of ``totals``/``counts`` happens under an
    internal lock, so one instance can be shared across worker threads
    (the serving metrics registry does exactly that). Concurrent
    ``section`` blocks accumulate independently — only the bookkeeping
    is serialised, never the timed body.
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under ``name`` (accumulates across calls)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def add(self, name: str, seconds: float) -> None:
        """Record an externally-measured duration under ``name``."""
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        with self._lock:
            self.totals[name] = self.totals.get(name, 0.0) + float(seconds)
            self.counts[name] = self.counts.get(name, 0) + 1

    def mean(self, name: str) -> float:
        """Mean seconds per entry for section ``name``."""
        with self._lock:
            if name not in self.totals:
                raise KeyError(f"no timings recorded for {name!r}")
            return self.totals[name] / self.counts[name]

    def snapshot(self) -> "tuple[Dict[str, float], Dict[str, int]]":
        """Consistent ``(totals, counts)`` copies for lock-free reading."""
        with self._lock:
            return dict(self.totals), dict(self.counts)

    def report(self) -> str:
        """Human-readable multi-line summary, slowest first."""
        totals, counts = self.snapshot()
        lines = []
        for name in sorted(totals, key=totals.get, reverse=True):
            lines.append(
                f"{name:<32s} {totals[name]:10.4f}s "
                f"({counts[name]} calls, "
                f"{totals[name] / counts[name] * 1e3:9.3f} ms each)"
            )
        return "\n".join(lines)


@dataclass
class OpCounter:
    """Tally of arithmetic operations, split by category.

    Categories used in this library: ``"mac_fp"`` (float multiply-accumulate),
    ``"mac_xnor"`` (binary XNOR+popcount MAC), ``"compare"`` (thresholds),
    ``"or"`` (boolean max-pool).
    """

    ops: Dict[str, int] = field(default_factory=dict)

    def add(self, category: str, count: int) -> None:
        """Accumulate ``count`` operations under ``category``."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self.ops[category] = self.ops.get(category, 0) + int(count)

    def total(self) -> int:
        """Total operations across all categories."""
        return sum(self.ops.values())

    def merge(self, other: "OpCounter") -> "OpCounter":
        """Accumulate another counter into this one and return self."""
        for k, v in other.ops.items():
            self.add(k, v)
        return self


@contextmanager
def timed(label: str = "elapsed") -> Iterator[Dict[str, float]]:
    """Time a block; the yielded dict gains ``label -> seconds`` on exit."""
    out: Dict[str, float] = {}
    start = time.perf_counter()
    try:
        yield out
    finally:
        out[label] = time.perf_counter() - start
