"""Lightweight wall-clock timers and arithmetic-operation counters.

The hardware simulator reports cycle counts; the software side uses these
helpers to report wall-clock and MAC-operation tallies in benchmarks.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

__all__ = ["Stopwatch", "OpCounter", "timed"]


@dataclass
class Stopwatch:
    """Accumulating wall-clock timer keyed by section name."""

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under ``name`` (accumulates across calls)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def mean(self, name: str) -> float:
        """Mean seconds per entry for section ``name``."""
        if name not in self.totals:
            raise KeyError(f"no timings recorded for {name!r}")
        return self.totals[name] / self.counts[name]

    def report(self) -> str:
        """Human-readable multi-line summary, slowest first."""
        lines = []
        for name in sorted(self.totals, key=self.totals.get, reverse=True):
            lines.append(
                f"{name:<32s} {self.totals[name]:10.4f}s "
                f"({self.counts[name]} calls, {self.mean(name) * 1e3:9.3f} ms each)"
            )
        return "\n".join(lines)


@dataclass
class OpCounter:
    """Tally of arithmetic operations, split by category.

    Categories used in this library: ``"mac_fp"`` (float multiply-accumulate),
    ``"mac_xnor"`` (binary XNOR+popcount MAC), ``"compare"`` (thresholds),
    ``"or"`` (boolean max-pool).
    """

    ops: Dict[str, int] = field(default_factory=dict)

    def add(self, category: str, count: int) -> None:
        """Accumulate ``count`` operations under ``category``."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self.ops[category] = self.ops.get(category, 0) + int(count)

    def total(self) -> int:
        """Total operations across all categories."""
        return sum(self.ops.values())

    def merge(self, other: "OpCounter") -> "OpCounter":
        """Accumulate another counter into this one and return self."""
        for k, v in other.ops.items():
            self.add(k, v)
        return self


@contextmanager
def timed(label: str = "elapsed") -> Iterator[Dict[str, float]]:
    """Time a block; the yielded dict gains ``label -> seconds`` on exit."""
    out: Dict[str, float] = {}
    start = time.perf_counter()
    try:
        yield out
    finally:
        out[label] = time.perf_counter() - start
