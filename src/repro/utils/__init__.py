"""Shared utilities: RNG plumbing, imaging, profiling, tables, checkpoints."""

from repro.utils.rng import RngLike, as_generator, derive, spawn
from repro.utils.profiling import OpCounter, Stopwatch, timed
from repro.utils.tables import render_matrix, render_table

__all__ = [
    "RngLike",
    "as_generator",
    "derive",
    "spawn",
    "OpCounter",
    "Stopwatch",
    "timed",
    "render_matrix",
    "render_table",
]
