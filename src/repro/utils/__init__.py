"""Shared utilities: RNG plumbing, imaging, profiling, clocks, tables."""

from repro.utils.clock import MONOTONIC, Clock, FakeClock, MonotonicClock
from repro.utils.rng import RngLike, as_generator, derive, spawn
from repro.utils.profiling import OpCounter, Stopwatch, timed
from repro.utils.tables import render_matrix, render_table

__all__ = [
    "RngLike",
    "as_generator",
    "derive",
    "spawn",
    "Clock",
    "MonotonicClock",
    "FakeClock",
    "MONOTONIC",
    "OpCounter",
    "Stopwatch",
    "timed",
    "render_matrix",
    "render_table",
]
