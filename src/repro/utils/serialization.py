"""Model checkpoint serialisation.

Checkpoints are plain ``.npz`` archives: every parameter tensor keyed by a
``<layer_index>.<param_name>`` path, plus a JSON metadata blob describing
the architecture so checkpoints are self-describing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Union

import numpy as np

__all__ = ["save_arrays", "load_arrays", "CHECKPOINT_FORMAT_VERSION"]

CHECKPOINT_FORMAT_VERSION = 1

_META_KEY = "__meta_json__"


def save_arrays(
    path: Union[str, Path],
    arrays: Mapping[str, np.ndarray],
    metadata: Dict[str, Any] | None = None,
) -> Path:
    """Save named arrays plus a JSON metadata blob to ``path`` (.npz).

    Returns the resolved path (with ``.npz`` suffix enforced).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta = dict(metadata or {})
    meta["format_version"] = CHECKPOINT_FORMAT_VERSION
    payload = {k: np.asarray(v) for k, v in arrays.items()}
    if _META_KEY in payload:
        raise ValueError(f"array name {_META_KEY!r} is reserved")
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **payload)
    return path


def load_arrays(path: Union[str, Path]):
    """Load a checkpoint; returns ``(arrays: dict, metadata: dict)``.

    Raises ``ValueError`` for checkpoints written by an incompatible
    future format version.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no checkpoint at {path}")
    with np.load(path, allow_pickle=False) as data:
        arrays = {k: data[k] for k in data.files if k != _META_KEY}
        if _META_KEY in data.files:
            meta = json.loads(bytes(data[_META_KEY].tobytes()).decode("utf-8"))
        else:
            meta = {}
    version = meta.get("format_version", 0)
    if version > CHECKPOINT_FORMAT_VERSION:
        raise ValueError(
            f"checkpoint format v{version} is newer than supported "
            f"v{CHECKPOINT_FORMAT_VERSION}"
        )
    return arrays, meta
