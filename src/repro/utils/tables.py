"""ASCII table rendering for benchmark reports.

Benchmarks regenerate the paper's tables/figures as text; this module keeps
the formatting in one place so every report reads the same way.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["render_table", "render_matrix", "format_cell"]


def format_cell(value) -> str:
    """Render a cell: floats get 2–4 significant decimals, rest via str()."""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
) -> str:
    """Render a boxed ASCII table with right-aligned numeric columns."""
    str_rows: List[List[str]] = [[format_cell(c) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    out: List[str] = []
    if title:
        out.append(title)
    out.append(sep)
    out.append("| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |")
    out.append(sep)
    for row in str_rows:
        out.append(
            "| " + " | ".join(c.rjust(w) for c, w in zip(row, widths)) + " |"
        )
    out.append(sep)
    return "\n".join(out)


def render_matrix(
    matrix,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    title: str | None = None,
    percent: bool = False,
) -> str:
    """Render a labelled 2-D matrix (e.g. a confusion matrix).

    With ``percent=True`` each cell additionally shows its row-normalised
    percentage, matching the paper's Fig. 2 presentation.
    """
    import numpy as np

    m = np.asarray(matrix)
    if m.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {m.shape}")
    if m.shape[0] != len(row_labels) or m.shape[1] != len(col_labels):
        raise ValueError(
            f"labels {len(row_labels)}x{len(col_labels)} do not match "
            f"matrix shape {m.shape}"
        )
    rows = []
    row_sums = m.sum(axis=1, keepdims=True)
    for i, label in enumerate(row_labels):
        cells = []
        for j in range(m.shape[1]):
            val = m[i, j]
            if percent:
                pct = 100.0 * val / row_sums[i, 0] if row_sums[i, 0] else 0.0
                cells.append(f"{int(val)} ({pct:.0f}%)")
            else:
                cells.append(format_cell(val))
        rows.append([label, *cells])
    return render_table(["true \\ pred", *col_labels], rows, title=title)
