"""Deterministic random-number plumbing.

Every stochastic component in this library accepts either an integer seed,
an existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy).
Centralising the coercion here keeps experiments reproducible end-to-end:
a single seed at the top of a script derives independent child streams for
data generation, weight initialisation, augmentation and shuffling.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]

__all__ = ["RngLike", "as_generator", "spawn", "derive", "derive_entropy", "sample_seeds"]


def as_generator(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` (fresh OS entropy), an integer seed, a ``SeedSequence``
        or an existing ``Generator`` (returned unchanged).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    if rng is None or isinstance(rng, (int, np.integer)):
        return np.random.default_rng(rng)
    raise TypeError(f"cannot coerce {type(rng).__name__!r} into a Generator")


def spawn(rng: RngLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    The parent generator is consumed (jumped) in the process, so repeated
    calls with the same parent yield fresh children.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    parent = as_generator(rng)
    seeds = parent.integers(0, np.iinfo(np.uint64).max, size=n, dtype=np.uint64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_entropy(rng: RngLike, key: str) -> int:
    """Deterministic 64-bit entropy for the named child stream of ``rng``.

    This is the integer :func:`derive` seeds its generator from, exposed
    separately so callers that need a *keyable* identity for the stream
    (e.g. the on-disk dataset cache) can hash it without constructing the
    generator. Only integer / SeedSequence parents give fully deterministic
    derivation; a ``Generator`` parent is sampled once.
    """
    if isinstance(rng, (int, np.integer)):
        base = int(rng)
    elif isinstance(rng, np.random.SeedSequence):
        base = int(np.random.default_rng(rng).integers(0, 2**63))
    else:
        base = int(as_generator(rng).integers(0, 2**63))
    # Mix the key into the seed with a stable (non-salted) hash.
    mixed = np.uint64(base)
    for ch in key.encode("utf-8"):
        mixed = np.uint64((int(mixed) * 1099511628211 + ch) % (2**64))
    return int(mixed)


def derive(rng: RngLike, key: str) -> np.random.Generator:
    """Derive a named child stream from ``rng``.

    Unlike :func:`spawn` this does **not** consume the parent: the child is
    a pure function of the parent's bit-generator state hash and ``key``,
    so components can derive their own streams without coordinating order.
    Only integer / SeedSequence parents give fully deterministic derivation;
    a ``Generator`` parent is sampled once.
    """
    return np.random.default_rng(derive_entropy(rng, key))


def sample_seeds(rng: RngLike, n: int) -> list[np.random.SeedSequence]:
    """``n`` per-item child :class:`~numpy.random.SeedSequence` objects.

    Draws one entropy word from ``rng`` and spawns ``n`` children from it,
    so the result depends only on the parent's state — not on how the
    items are later partitioned across workers. This is the scheme that
    makes parallel dataset generation bit-identical to serial generation.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    entropy = int(as_generator(rng).integers(0, 2**63))
    return np.random.SeedSequence(entropy).spawn(n)


def check_probability(p: float, name: str = "p") -> float:
    """Validate that ``p`` lies in [0, 1] and return it as ``float``."""
    p = float(p)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {p}")
    return p


def choice_index(rng: RngLike, weights: Sequence[float]) -> int:
    """Sample an index proportional to ``weights`` (need not be normalised)."""
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1 or w.size == 0:
        raise ValueError("weights must be a non-empty 1-D sequence")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    total = w.sum()
    if total <= 0:
        raise ValueError("weights must not all be zero")
    return int(as_generator(rng).choice(w.size, p=w / total))
