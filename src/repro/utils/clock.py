"""Injectable time sources for timing-sensitive code.

Production code paths (serving metrics, the micro-batcher, the load
generator, the tracer) take a :class:`Clock` instead of calling
``time.monotonic()`` directly, so tests can drive deadlines and sliding
windows deterministically with a :class:`FakeClock` instead of sleeping
and hoping the scheduler cooperates.

The module-level :data:`MONOTONIC` singleton is the default everywhere;
it delegates straight to :func:`time.monotonic` / :func:`time.sleep`.
"""

from __future__ import annotations

import time

__all__ = ["Clock", "MonotonicClock", "FakeClock", "MONOTONIC"]


class Clock:
    """Minimal time-source interface: a monotonic stamp and a sleep."""

    def monotonic(self) -> float:
        """Seconds on a monotonically non-decreasing clock."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Block (or simulate blocking) for ``seconds``."""
        raise NotImplementedError


class MonotonicClock(Clock):
    """The real wall clock (``time.monotonic`` / ``time.sleep``)."""

    def monotonic(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class FakeClock(Clock):
    """A manually-advanced clock for deterministic tests.

    ``sleep`` advances the clock instead of blocking, so code under test
    that waits for a deadline completes instantly; ``advance`` moves
    time forward explicitly. Never moves backwards.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def monotonic(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self.advance(max(0.0, seconds))

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds``; returns the new stamp."""
        if seconds < 0:
            raise ValueError(f"cannot move time backwards ({seconds})")
        self._now += float(seconds)
        return self._now


#: Shared default clock — the real monotonic wall clock.
MONOTONIC = MonotonicClock()
