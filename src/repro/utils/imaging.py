"""Small image-processing toolkit used by the data generator and Grad-CAM.

Images are ``float32`` arrays in ``[0, 1]`` with layout ``(H, W, 3)`` for
RGB or ``(H, W)`` for scalar maps. Everything here is pure numpy/scipy and
vectorised; no PIL/OpenCV dependency.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np
from scipy import ndimage

__all__ = [
    "clip01",
    "resize_bilinear",
    "gaussian_blur",
    "normalize01",
    "overlay_heatmap",
    "jet_colormap",
    "fill_polygon",
    "polygon_mask",
    "draw_ellipse",
    "ellipse_mask",
    "rotate_image",
    "to_uint8",
    "from_uint8",
]


def clip01(image: np.ndarray) -> np.ndarray:
    """Clip an image into the canonical [0, 1] range (returns a new array)."""
    return np.clip(image, 0.0, 1.0)


def to_uint8(image: np.ndarray) -> np.ndarray:
    """Convert a [0, 1] float image to uint8 [0, 255]."""
    return (clip01(image) * 255.0 + 0.5).astype(np.uint8)


def from_uint8(image: np.ndarray) -> np.ndarray:
    """Convert a uint8 image to float32 in [0, 1]."""
    return image.astype(np.float32) / 255.0


def quantize_to_uint8_grid(image: np.ndarray) -> np.ndarray:
    """Snap a [0, 1] float image onto the 256-level uint8 grid.

    Camera sensors deliver uint8; producing dataset images already on
    that grid makes the software float path and the accelerator's 8-bit
    integer input layer see *identical* pixel values, which is what makes
    the HW/SW equivalence checks meaningful.
    """
    return np.rint(clip01(image) * 255.0).astype(np.float32) / 255.0


def resize_bilinear(image: np.ndarray, out_hw: Tuple[int, int]) -> np.ndarray:
    """Resize ``(H, W[, C])`` image to ``out_hw`` with bilinear interpolation.

    Uses align-corners=False convention (pixel centres), matching common
    image libraries.
    """
    out_h, out_w = int(out_hw[0]), int(out_hw[1])
    if out_h <= 0 or out_w <= 0:
        raise ValueError(f"output size must be positive, got {(out_h, out_w)}")
    in_h, in_w = image.shape[:2]
    if (in_h, in_w) == (out_h, out_w):
        return image.astype(np.float32, copy=True)
    # Source coordinates of each output pixel centre.
    ys = (np.arange(out_h, dtype=np.float64) + 0.5) * (in_h / out_h) - 0.5
    xs = (np.arange(out_w, dtype=np.float64) + 0.5) * (in_w / out_w) - 0.5
    ys = np.clip(ys, 0, in_h - 1)
    xs = np.clip(xs, 0, in_w - 1)
    y0 = np.floor(ys).astype(np.intp)
    x0 = np.floor(xs).astype(np.intp)
    y1 = np.minimum(y0 + 1, in_h - 1)
    x1 = np.minimum(x0 + 1, in_w - 1)
    wy = (ys - y0).astype(np.float32)[:, None]
    wx = (xs - x0).astype(np.float32)[None, :]
    if image.ndim == 3:
        wy = wy[..., None]
        wx = wx[..., None]
    img = image.astype(np.float32)
    top = img[y0][:, x0] * (1 - wx) + img[y0][:, x1] * wx
    bot = img[y1][:, x0] * (1 - wx) + img[y1][:, x1] * wx
    return top * (1 - wy) + bot * wy


def gaussian_blur(image: np.ndarray, sigma: float) -> np.ndarray:
    """Gaussian-blur an image; channels are blurred independently."""
    if sigma <= 0:
        return image.astype(np.float32, copy=True)
    if image.ndim == 3:
        sigmas = (sigma, sigma, 0.0)
    else:
        sigmas = sigma
    return ndimage.gaussian_filter(image.astype(np.float32), sigmas)


def normalize01(x: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Min-max normalise ``x`` into [0, 1]; constant input maps to zeros."""
    x = x.astype(np.float32)
    lo, hi = float(x.min()), float(x.max())
    if hi - lo < eps:
        return np.zeros_like(x)
    return (x - lo) / (hi - lo)


def jet_colormap(values: np.ndarray) -> np.ndarray:
    """Map [0, 1] scalars to RGB using a compact jet-like colormap."""
    v = np.clip(values, 0.0, 1.0).astype(np.float32)
    r = np.clip(1.5 - np.abs(4.0 * v - 3.0), 0.0, 1.0)
    g = np.clip(1.5 - np.abs(4.0 * v - 2.0), 0.0, 1.0)
    b = np.clip(1.5 - np.abs(4.0 * v - 1.0), 0.0, 1.0)
    return np.stack([r, g, b], axis=-1)


def overlay_heatmap(
    image: np.ndarray, heatmap: np.ndarray, alpha: float = 0.45
) -> np.ndarray:
    """Overlay a scalar attention map on an RGB image (Grad-CAM style).

    ``heatmap`` is resized to the image resolution, normalised to [0, 1],
    colour-mapped and alpha-blended onto the image.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    h, w = image.shape[:2]
    hm = resize_bilinear(heatmap.astype(np.float32), (h, w))
    hm = normalize01(hm)
    colored = jet_colormap(hm)
    return clip01((1.0 - alpha) * image + alpha * colored)


def polygon_mask(
    shape_hw: Tuple[int, int], vertices: np.ndarray, supersample: int = 2
) -> np.ndarray:
    """Rasterise a polygon into a float coverage mask in [0, 1].

    Vertices are ``(N, 2)`` in ``(x, y)`` pixel coordinates. Winding is by
    the even-odd rule, evaluated at ``supersample``² points per pixel for
    soft edges.
    """
    verts = np.asarray(vertices, dtype=np.float64)
    if verts.ndim != 2 or verts.shape[1] != 2 or verts.shape[0] < 3:
        raise ValueError(f"vertices must be (N>=3, 2), got {verts.shape}")
    h, w = int(shape_hw[0]), int(shape_hw[1])
    s = max(1, int(supersample))
    # Sample point grid (pixel centres of the supersampled lattice).
    ys = (np.arange(h * s) + 0.5) / s - 0.5
    xs = (np.arange(w * s) + 0.5) / s - 0.5
    px = xs[None, :]
    py = ys[:, None]
    inside = np.zeros((h * s, w * s), dtype=bool)
    x0s, y0s = verts[:, 0], verts[:, 1]
    x1s, y1s = np.roll(x0s, -1), np.roll(y0s, -1)
    for x0, y0, x1, y1 in zip(x0s, y0s, x1s, y1s):
        if y0 == y1:
            continue
        cond = (py >= min(y0, y1)) & (py < max(y0, y1))
        t = (py - y0) / (y1 - y0)
        x_at = x0 + t * (x1 - x0)
        inside ^= cond & (px < x_at)
    mask = inside.reshape(h, s, w, s).mean(axis=(1, 3))
    return mask.astype(np.float32)


def fill_polygon(
    image: np.ndarray,
    vertices: np.ndarray,
    color: Sequence[float],
    opacity: float = 1.0,
) -> np.ndarray:
    """Alpha-composite a filled polygon onto an RGB image in place."""
    mask = polygon_mask(image.shape[:2], vertices)
    return composite(image, mask, color, opacity)


def ellipse_mask(
    shape_hw: Tuple[int, int],
    center_xy: Tuple[float, float],
    radii_xy: Tuple[float, float],
    angle: float = 0.0,
    softness: float = 0.75,
) -> np.ndarray:
    """Anti-aliased ellipse coverage mask; ``angle`` in radians (CCW)."""
    h, w = int(shape_hw[0]), int(shape_hw[1])
    cx, cy = center_xy
    rx, ry = radii_xy
    if rx <= 0 or ry <= 0:
        raise ValueError(f"radii must be positive, got {(rx, ry)}")
    ys, xs = np.mgrid[0:h, 0:w]
    dx = xs - cx
    dy = ys - cy
    c, s = np.cos(angle), np.sin(angle)
    u = (c * dx + s * dy) / rx
    v = (-s * dx + c * dy) / ry
    r = np.sqrt(u * u + v * v)
    # Distance-based soft edge roughly one ``softness`` pixel wide.
    edge = softness / max(rx, ry)
    return np.clip((1.0 - r) / max(edge, 1e-6) + 0.5, 0.0, 1.0).astype(np.float32)


def draw_ellipse(
    image: np.ndarray,
    center_xy: Tuple[float, float],
    radii_xy: Tuple[float, float],
    color: Sequence[float],
    angle: float = 0.0,
    opacity: float = 1.0,
) -> np.ndarray:
    """Alpha-composite a filled ellipse onto an RGB image in place."""
    mask = ellipse_mask(image.shape[:2], center_xy, radii_xy, angle)
    return composite(image, mask, color, opacity)


def composite(
    image: np.ndarray,
    mask: np.ndarray,
    color: Sequence[float],
    opacity: float = 1.0,
) -> np.ndarray:
    """Blend ``color`` into ``image`` weighted by ``mask * opacity`` (in place)."""
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError(f"image must be (H, W, 3), got {image.shape}")
    col = np.asarray(color, dtype=np.float32).reshape(1, 1, 3)
    a = (mask * float(opacity))[..., None]
    image *= 1.0 - a
    image += a * col
    return image


def rotate_image(image: np.ndarray, degrees: float) -> np.ndarray:
    """Rotate an image about its centre, filling borders by edge replication."""
    if degrees == 0.0:
        return image.astype(np.float32, copy=True)
    axes = (1, 0)
    return ndimage.rotate(
        image.astype(np.float32),
        angle=degrees,
        axes=axes,
        reshape=False,
        order=1,
        mode="nearest",
    )
