"""Shape and dtype validation helpers.

All layers and hardware units validate their inputs eagerly so that
misconfigured models fail with a precise message at the offending layer
rather than a broadcast error deep inside a GEMM.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "require_ndim",
    "require_shape",
    "require_dtype",
    "require_binary",
    "as_pair",
]


def require_ndim(x: np.ndarray, ndim: int, name: str = "tensor") -> np.ndarray:
    """Raise ``ValueError`` unless ``x`` has exactly ``ndim`` dimensions."""
    if x.ndim != ndim:
        raise ValueError(f"{name} must be {ndim}-D, got shape {x.shape}")
    return x


def require_shape(
    x: np.ndarray,
    shape: Sequence[Optional[int]],
    name: str = "tensor",
) -> np.ndarray:
    """Validate ``x.shape`` against a pattern; ``None`` entries are wildcards."""
    if x.ndim != len(shape):
        raise ValueError(
            f"{name} must be {len(shape)}-D matching {tuple(shape)}, got {x.shape}"
        )
    for axis, (got, want) in enumerate(zip(x.shape, shape)):
        if want is not None and got != want:
            raise ValueError(
                f"{name} axis {axis} must be {want}, got {got} (shape {x.shape})"
            )
    return x


def require_dtype(
    x: np.ndarray, dtypes: Sequence[type], name: str = "tensor"
) -> np.ndarray:
    """Raise ``TypeError`` unless ``x.dtype`` is one of ``dtypes``."""
    if not any(np.issubdtype(x.dtype, d) for d in dtypes):
        names = ", ".join(np.dtype(d).name for d in dtypes)
        raise TypeError(f"{name} must have dtype in ({names}), got {x.dtype}")
    return x


def require_binary(x: np.ndarray, name: str = "tensor") -> np.ndarray:
    """Raise ``ValueError`` unless every element of ``x`` is -1 or +1."""
    bad = (x != 1) & (x != -1)
    if bad.any():
        example = x[bad].ravel()[0]
        raise ValueError(
            f"{name} must contain only -1/+1, found {example!r} "
            f"({int(bad.sum())} offending elements)"
        )
    return x


def as_pair(value, name: str = "value") -> Tuple[int, int]:
    """Coerce an int or 2-sequence into an ``(int, int)`` pair."""
    if isinstance(value, (int, np.integer)):
        return int(value), int(value)
    try:
        a, b = value
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{name} must be an int or pair, got {value!r}") from exc
    return int(a), int(b)
