"""BinaryCoP reproduction.

A from-scratch Python implementation of *BinaryCoP: Binary Neural
Network-based COVID-19 Face-Mask Wear and Positioning Predictor on Edge
Devices* (Fasfous et al., IPDPS-W 2021), including every substrate the
paper relies on:

* :mod:`repro.nn` — a numpy deep-learning framework with binary
  conv/dense layers, STE training, batch-norm and optimizers;
* :mod:`repro.data` — a synthetic MaskedFace-Net-style dataset generator
  (key-point-driven deformable masks, 4 wear classes, §IV-A pipeline);
* :mod:`repro.hw` — a FINN-style streaming accelerator simulator
  (XNOR+popcount MVTUs, threshold folding, OR-pooling, cycle/resource/
  power models calibrated to the paper's Table II and §IV-B);
* :mod:`repro.core` — BinaryCoP itself: the CNV/n-CNV/µ-CNV prototypes,
  training, Grad-CAM interpretability and deployment scenarios;
* :mod:`repro.serving` — a dynamically-batched, backpressured inference
  server multiplexing gate-camera traffic over the software and
  accelerator backends (``repro serve`` on the CLI).

Quickstart::

    from repro import BinaryCoP, build_masked_face_dataset

    splits = build_masked_face_dataset(raw_size=4000, rng=0)
    clf = BinaryCoP("n-cnv", rng=0)
    clf.fit(splits)
    print(clf.evaluate(splits.test))
    accelerator = clf.deploy()          # Table I folding, bit-true datapath
    print(accelerator.predict(splits.test.images[:8]))
"""

from repro.core import (
    BinaryCoP,
    ConfusionMatrix,
    CrowdAnalyzer,
    GateMonitor,
    GradCAM,
    TrainingBudget,
    build_architecture,
    confusion_matrix,
    run_study,
    table1_folding,
)
from repro.data import (
    CLASS_NAMES,
    FaceSampleGenerator,
    WearClass,
    build_masked_face_dataset,
)
from repro.hw import (
    FinnAccelerator,
    FoldingConfig,
    PowerModel,
    Z7010,
    Z7020,
    analyze_pipeline,
    compile_model,
    estimate_resources,
)
from repro.runtime import (
    ExecutionConfig,
    create_engine,
    engine_names,
    engine_table,
    resolve_engine_name,
)
from repro.serving import InferenceServer, ServingConfig

__version__ = "1.0.0"

__all__ = [
    "BinaryCoP",
    "CLASS_NAMES",
    "ConfusionMatrix",
    "CrowdAnalyzer",
    "ExecutionConfig",
    "FaceSampleGenerator",
    "FinnAccelerator",
    "FoldingConfig",
    "GateMonitor",
    "GradCAM",
    "PowerModel",
    "TrainingBudget",
    "WearClass",
    "Z7010",
    "Z7020",
    "analyze_pipeline",
    "build_architecture",
    "build_masked_face_dataset",
    "compile_model",
    "confusion_matrix",
    "create_engine",
    "engine_names",
    "engine_table",
    "estimate_resources",
    "resolve_engine_name",
    "run_study",
    "table1_folding",
    "__version__",
]
